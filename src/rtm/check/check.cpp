#include "rtm/check/check.hpp"

#include <algorithm>
#include <sstream>

#include "obs/trace.hpp"
#include "rtm/chaos.hpp"
#include "rtm/stat_counter.hpp"
#include "rtm/mailbox.hpp"
#include "rtm/world.hpp"

namespace reptile::rtm::check {

namespace {

constexpr std::size_t kMaxNotes = 64;

/// Flight-recorder events dumped per thread when a check fails: enough to
/// see what a thread was doing before it froze, small enough to read.
constexpr std::size_t kFlightTailEvents = 32;

const char* role_name(ThreadRole role) {
  switch (role) {
    case ThreadRole::kMain:
      return "main";
    case ThreadRole::kWorker:
      return "worker";
    case ThreadRole::kService:
      return "service";
    case ThreadRole::kOther:
      return "other";
  }
  return "?";
}

std::string envelope(int source, int tag) {
  std::ostringstream out;
  out << "source=";
  if (source == kAnySource) {
    out << "any";
  } else {
    out << source;
  }
  out << " tag=";
  if (tag == kAnyTag) {
    out << "any";
  } else {
    out << tag;
  }
  return out.str();
}

long ms_since(std::chrono::steady_clock::time_point then,
              std::chrono::steady_clock::time_point now) {
  return std::chrono::duration_cast<std::chrono::milliseconds>(now - then)
      .count();
}

}  // namespace

// --- ThreadScope ----------------------------------------------------------

ThreadScope::ThreadScope(RunChecker& check, int rank, ThreadRole role)
    : check_(&check), registered_(check.register_thread(rank, role)) {}

ThreadScope::~ThreadScope() {
  if (registered_) check_->unregister_thread();
}

// --- construction / wiring ------------------------------------------------

RunChecker::RunChecker(const Options& options, int nranks, World* world)
    : opts_(options),
      nranks_(nranks),
      world_(world),
      streams_(static_cast<std::size_t>(nranks)),
      mailboxes_(static_cast<std::size_t>(nranks), nullptr),
      counters_(static_cast<std::size_t>(nranks)),
      ever_threads_(static_cast<std::size_t>(nranks), 0),
      barrier_arrived_(static_cast<std::size_t>(nranks), 0),
      final_(static_cast<std::size_t>(nranks)) {}

RunChecker::~RunChecker() {
  stop_watchdog();
  // Detach the hooks so deliveries that outlive the checker (the chaos
  // drain in ~World) cannot call into freed state.
  for (int r = 0; r < nranks_; ++r) {
    if (Mailbox* mb = mailboxes_[static_cast<std::size_t>(r)]) {
      mb->set_check(nullptr, r);
    }
  }
  if (barrier_ != nullptr) barrier_->set_check(nullptr);
}

void RunChecker::attach_mailbox(int rank, Mailbox* mailbox) {
  mailboxes_[static_cast<std::size_t>(rank)] = mailbox;
  mailbox->set_check(this, rank);
}

void RunChecker::attach_barrier(Barrier* barrier) {
  barrier_ = barrier;
  barrier->set_check(this);
}

void RunChecker::start() {
  if (opts_.deadlock && !watchdog_.joinable()) {
    watchdog_ = std::thread([this] { watchdog_main(); });
  }
}

void RunChecker::stop_watchdog() {
  {
    std::lock_guard lock(stop_mutex_);
    stop_ = true;
  }
  stop_cv_.notify_all();
  if (watchdog_.joinable()) watchdog_.join();
}

[[noreturn]] void RunChecker::throw_abort() const {
  throw DeadlockError(abort_report_);
}

// --- thread registry ------------------------------------------------------

bool RunChecker::register_thread(int rank, ThreadRole role) {
  std::lock_guard lock(mutex_);
  const auto id = std::this_thread::get_id();
  if (threads_.contains(id)) return false;
  ThreadInfo info;
  info.rank = rank;
  info.role = role;
  info.since = std::chrono::steady_clock::now();
  threads_.emplace(id, info);
  ++ever_threads_[static_cast<std::size_t>(rank)];
  return true;
}

void RunChecker::unregister_thread() {
  std::lock_guard lock(mutex_);
  threads_.erase(std::this_thread::get_id());
}

RunChecker::ThreadInfo& RunChecker::thread_entry_locked(int rank) {
  const auto id = std::this_thread::get_id();
  auto it = threads_.find(id);
  if (it == threads_.end()) {
    // An unregistered thread entered a blocking wait (e.g. an ad-hoc helper
    // thread in a test): track it from here on so its rank stays honest.
    ThreadInfo info;
    info.rank = rank;
    info.since = std::chrono::steady_clock::now();
    it = threads_.emplace(id, info).first;
    ++ever_threads_[static_cast<std::size_t>(rank)];
  }
  return it->second;
}

void RunChecker::thread_active() {
  std::lock_guard lock(mutex_);
  auto it = threads_.find(std::this_thread::get_id());
  if (it == threads_.end()) return;
  it->second.state = ThreadState::kRunning;
  it->second.since = std::chrono::steady_clock::now();
}

void RunChecker::thread_idle_poll() {
  std::lock_guard lock(mutex_);
  auto it = threads_.find(std::this_thread::get_id());
  if (it == threads_.end()) return;
  if (it->second.state != ThreadState::kIdlePoll) {
    it->second.state = ThreadState::kIdlePoll;
    it->second.since = std::chrono::steady_clock::now();
  }
}

// --- mailbox hooks --------------------------------------------------------

void RunChecker::on_push(int rank, Message& m) {
  if (opts_.audit) {
    Stream& st =
        streams_[static_cast<std::size_t>(rank)][stream_key(m.source, m.tag)];
    m.seq = st.pushed++;
  }
  stat_add(counters_[static_cast<std::size_t>(rank)].delivered, 1);
  stat_add(deliveries_, 1);
}

void RunChecker::on_pop(int rank, const Message& m) {
  if (opts_.audit) {
    Stream& st =
        streams_[static_cast<std::size_t>(rank)][stream_key(m.source, m.tag)];
    if (m.seq != st.popped) {
      stat_add(counters_[static_cast<std::size_t>(rank)].fifo_violations, 1);
      std::ostringstream note;
      note << "rank " << rank << ": FIFO overtaking on stream ("
           << envelope(m.source, m.tag) << "): popped seq " << m.seq
           << ", expected " << st.popped;
      note_locked(note.str());
      st.popped = m.seq;  // resync so one overtake is one violation
    }
    ++st.popped;
  }
  stat_add(counters_[static_cast<std::size_t>(rank)].consumed, 1);
  stat_add(consumes_, 1);
}

void RunChecker::note_locked(std::string text) {
  std::lock_guard lock(mutex_);
  if (notes_.size() < kMaxNotes) notes_.push_back(std::move(text));
}

// --- blocking-wait hooks --------------------------------------------------

std::uint64_t RunChecker::begin_recv_wait(int rank, int source, int tag,
                                          const Mailbox* mailbox) {
  std::lock_guard lock(mutex_);
  const std::uint64_t ticket = next_ticket_++;
  WaitInfo w;
  w.ticket = ticket;
  w.rank = rank;
  w.kind = WaitInfo::Kind::kRecv;
  w.source = source;
  w.tag = tag;
  w.mailbox = mailbox;
  w.since = std::chrono::steady_clock::now();
  waits_.emplace(ticket, w);
  ThreadInfo& t = thread_entry_locked(rank);
  t.state = ThreadState::kRecvWait;
  t.since = w.since;
  t.ticket = ticket;
  stat_add(counters_[static_cast<std::size_t>(rank)].waits, 1);
  return ticket;
}

void RunChecker::end_recv_wait(std::uint64_t ticket) {
  std::lock_guard lock(mutex_);
  waits_.erase(ticket);
  auto it = threads_.find(std::this_thread::get_id());
  if (it != threads_.end()) {
    it->second.state = ThreadState::kRunning;
    it->second.since = std::chrono::steady_clock::now();
  }
}

void RunChecker::on_barrier_arrive(int rank, std::uint64_t gen,
                                   bool released) {
  std::lock_guard lock(mutex_);
  stat_add(arrivals_, 1);
  if (gen != barrier_gen_) {
    barrier_gen_ = gen;
    barrier_untracked_ = false;
    std::fill(barrier_arrived_.begin(), barrier_arrived_.end(), char{0});
  }
  if (rank >= 0 && rank < nranks_) {
    barrier_arrived_[static_cast<std::size_t>(rank)] = 1;
  } else {
    // Anonymous arrival: we cannot attribute it, so barrier waits of this
    // generation are excluded from deadlock analysis (conservative).
    barrier_untracked_ = true;
  }
  if (released) barrier_released_below_ = gen + 1;
}

std::uint64_t RunChecker::begin_barrier_wait(int rank, std::uint64_t gen) {
  std::lock_guard lock(mutex_);
  const std::uint64_t ticket = next_ticket_++;
  WaitInfo w;
  w.ticket = ticket;
  w.rank = rank;
  w.kind = WaitInfo::Kind::kBarrier;
  w.gen = gen;
  w.since = std::chrono::steady_clock::now();
  waits_.emplace(ticket, w);
  if (rank >= 0 && rank < nranks_) {
    ThreadInfo& t = thread_entry_locked(rank);
    t.state = ThreadState::kBarrierWait;
    t.since = w.since;
    t.ticket = ticket;
    stat_add(counters_[static_cast<std::size_t>(rank)].waits, 1);
  }
  return ticket;
}

void RunChecker::end_barrier_wait(std::uint64_t ticket) {
  std::lock_guard lock(mutex_);
  waits_.erase(ticket);
  auto it = threads_.find(std::this_thread::get_id());
  if (it != threads_.end()) {
    it->second.state = ThreadState::kRunning;
    it->second.since = std::chrono::steady_clock::now();
  }
}

// --- protocol linter ------------------------------------------------------

const TagRule* RunChecker::rule_for(int tag) const noexcept {
  for (const TagRule& rule : opts_.tags) {
    if (tag >= rule.first_tag && tag <= rule.last_tag) return &rule;
  }
  return nullptr;
}

bool RunChecker::is_reply_tag(int tag) const noexcept {
  const TagRule* rule = rule_for(tag);
  return rule != nullptr && rule->dir == TagDir::kReply;
}

void RunChecker::on_send(int src, int dst, int tag,
                         std::span<const std::byte> payload) {
  if (!opts_.lint || opts_.tags.empty()) return;
  stat_add(counters_[static_cast<std::size_t>(src)].lint_checked, 1);

  const auto fail = [&](const std::string& what) {
    std::ostringstream out;
    out << "rtm-check: protocol violation on send rank " << src << " -> rank "
        << dst << " tag " << tag << " (" << payload.size()
        << " bytes): " << what;
    throw ProtocolError(out.str());
  };

  const TagRule* rule = rule_for(tag);
  if (rule == nullptr) {
    if (opts_.strict_tags) fail("tag not in the protocol table");
    return;
  }
  if (payload.size() < rule->min_bytes || payload.size() > rule->max_bytes) {
    std::ostringstream what;
    what << rule->name << " payload size out of bounds [" << rule->min_bytes
         << ", ";
    if (rule->max_bytes == std::numeric_limits<std::size_t>::max()) {
      what << "inf";
    } else {
      what << rule->max_bytes;
    }
    what << "]";
    fail(what.str());
  }

  if (rule->dir == TagDir::kRequest) {
    if (rule->pair != nullptr) {
      int reply_tag = 0;
      std::size_t reply_bytes = 0;
      std::uint64_t seq = 0;
      std::string err;
      if (!rule->pair(payload, &reply_tag, &reply_bytes, &seq, &err)) {
        fail(std::string(rule->name) + ": " + err);
      }
      std::lock_guard lock(lint_mutex_);
      PairLedger& ledger = outstanding_[std::make_tuple(dst, src, reply_tag)];
      if (seq == 0) {
        // Unsequenced traffic: original FIFO-of-sizes pairing.
        ledger.legacy.push_back(reply_bytes);
        return;
      }
      const auto pending = std::find_if(
          ledger.pending.begin(), ledger.pending.end(),
          [seq](const PairLedger::Pending& p) { return p.seq == seq; });
      if (pending != ledger.pending.end()) {
        // Idempotent retransmission of a still-outstanding request: audit,
        // don't double-book the expected reply.
        stat_add(counters_[static_cast<std::size_t>(src)].retransmits, 1);
        return;
      }
      if (ledger.answered.contains(seq)) {
        // Retransmission racing the (lost or stale) reply: the responder
        // will answer again, so the seq becomes outstanding once more.
        stat_add(counters_[static_cast<std::size_t>(src)].retransmits, 1);
      } else if (ledger.dropped.erase(seq) != 0) {
        // Retransmission of a request whose previous copy was dropped.
        stat_add(counters_[static_cast<std::size_t>(src)].retransmits, 1);
      }
      ledger.pending.push_back({seq, reply_bytes});
      return;
    }
    return;
  }

  // Reply: must answer an outstanding request for (src -> dst, tag) — the
  // oldest one for unsequenced traffic, the seq-matching one otherwise —
  // and carry exactly the payload size the request implies.
  std::uint64_t seq = 0;
  if (rule->seq_of != nullptr) (void)rule->seq_of(payload, &seq);
  std::size_t expected = 0;
  bool stale = false;
  {
    std::lock_guard lock(lint_mutex_);
    auto it = outstanding_.find(std::make_tuple(src, dst, tag));
    PairLedger* ledger = it != outstanding_.end() ? &it->second : nullptr;
    if (seq == 0) {
      if (ledger == nullptr || ledger->legacy.empty()) {
        fail(std::string(rule->name) + ": no outstanding request awaits this "
                                       "reply (orphaned reply)");
      }
      expected = ledger->legacy.front();
      ledger->legacy.erase(ledger->legacy.begin());
    } else {
      const auto pending =
          ledger == nullptr
              ? std::vector<PairLedger::Pending>::iterator{}
              : std::find_if(ledger->pending.begin(), ledger->pending.end(),
                             [seq](const PairLedger::Pending& p) {
                               return p.seq == seq;
                             });
      if (ledger != nullptr && pending != ledger->pending.end()) {
        expected = pending->bytes;
        ledger->pending.erase(pending);
        ledger->answered.emplace(seq, expected);
        ledger->answered_order.push_back(seq);
        if (ledger->answered_order.size() > kAnsweredCap) {
          ledger->answered.erase(ledger->answered_order.front());
          ledger->answered_order.pop_front();
        }
      } else if (ledger != nullptr && ledger->answered.contains(seq)) {
        // Duplicate answer to an already-served seq (the responder saw a
        // retransmission): audited, still size-checked below.
        expected = ledger->answered.at(seq);
        stale = true;
      } else if (ledger != nullptr && ledger->dropped.contains(seq)) {
        // An earlier copy of a since-dropped request got through after all.
        expected = ledger->dropped.at(seq);
        ledger->dropped.erase(seq);
        ledger->answered.emplace(seq, expected);
        ledger->answered_order.push_back(seq);
        if (ledger->answered_order.size() > kAnsweredCap) {
          ledger->answered.erase(ledger->answered_order.front());
          ledger->answered_order.pop_front();
        }
      } else {
        fail(std::string(rule->name) + ": no outstanding request awaits this "
                                       "reply (orphaned reply)");
      }
    }
  }
  if (stale) {
    stat_add(counters_[static_cast<std::size_t>(src)].stale_reply_sends, 1);
  }
  if (payload.size() != expected) {
    std::ostringstream what;
    what << rule->name << " payload is " << payload.size()
         << " bytes, the paired request implies " << expected;
    fail(what.str());
  }
}

// --- chaos hooks ----------------------------------------------------------

void RunChecker::on_chaos_drop(int dst, const Message& m) {
  stat_add(counters_[static_cast<std::size_t>(m.source)].chaos_dropped, 1);
  if (!opts_.lint || opts_.tags.empty()) return;
  const TagRule* rule = rule_for(m.tag);
  if (rule == nullptr || rule->dir != TagDir::kRequest ||
      rule->pair == nullptr) {
    return;
  }
  // A dropped request will never be answered; retire its ledger entry so
  // finalize doesn't misreport it as unanswered. (The requester's timeout
  // retransmission re-registers the seq.)
  int reply_tag = 0;
  std::size_t reply_bytes = 0;
  std::uint64_t seq = 0;
  std::string err;
  if (m.payload.size() < rule->min_bytes ||
      !rule->pair(m.payload, &reply_tag, &reply_bytes, &seq, &err)) {
    return;  // truncated-then-dropped; nothing was booked for this form
  }
  std::lock_guard lock(lint_mutex_);
  const auto it = outstanding_.find(std::make_tuple(dst, m.source, reply_tag));
  if (it == outstanding_.end()) return;
  PairLedger& ledger = it->second;
  if (seq == 0) {
    // Unsequenced: retire the newest matching expectation (best effort).
    const auto legacy = std::find(ledger.legacy.rbegin(),
                                  ledger.legacy.rend(), reply_bytes);
    if (legacy != ledger.legacy.rend()) {
      ledger.legacy.erase(std::next(legacy).base());
    }
    return;
  }
  const auto pending = std::find_if(
      ledger.pending.begin(), ledger.pending.end(),
      [seq](const PairLedger::Pending& p) { return p.seq == seq; });
  if (pending != ledger.pending.end()) {
    ledger.dropped.emplace(seq, pending->bytes);
    ledger.pending.erase(pending);
  }
}

void RunChecker::on_chaos_duplicate(int /*dst*/, const Message& m) {
  stat_add(counters_[static_cast<std::size_t>(m.source)].chaos_duplicated, 1);
}

void RunChecker::on_chaos_truncate(int /*dst*/, const Message& m) {
  stat_add(counters_[static_cast<std::size_t>(m.source)].chaos_truncated, 1);
}

void RunChecker::on_phase_boundary(int rank, std::size_t pending) {
  auto& counter =
      counters_[static_cast<std::size_t>(rank)].max_pending_barrier;
  std::uint64_t seen = stat_read(counter);
  // mo: relaxed max-CAS — still a statistic (see stat_counter.hpp); the
  // loop needs atomicity only, not ordering.
  while (seen < pending && !counter.compare_exchange_weak(
                               seen, pending, std::memory_order_relaxed)) {
  }
}

// --- watchdog -------------------------------------------------------------

void RunChecker::watchdog_main() {
  std::unique_lock lock(stop_mutex_);
  while (!stop_) {
    stop_cv_.wait_for(lock, poll_interval());
    // mo: acquire pairs with the release store in abort(); observing
    // `true` makes the abort_report_ write visible to this thread.
    if (stop_ || aborted_.load(std::memory_order_acquire)) return;
    lock.unlock();
    evaluate();
    lock.lock();
  }
}

void RunChecker::evaluate() {
  using clock = std::chrono::steady_clock;
  const auto now = clock::now();
  const std::uint64_t before[3] = {
      stat_read(deliveries_),
      stat_read(consumes_),
      stat_read(arrivals_)};

  struct WaitCopy {
    WaitInfo w;
    bool released = false;  ///< young, logically released, or untracked
  };
  struct ThreadCopy {
    ThreadInfo t;
  };
  std::vector<WaitCopy> waits;
  std::vector<ThreadCopy> threads;
  std::vector<int> ever;
  std::uint64_t released_below = 0;
  std::uint64_t tracked_gen = 0;
  bool gen_untracked = false;
  std::vector<char> arrived;
  {
    std::lock_guard lock(mutex_);
    waits.reserve(waits_.size());
    for (const auto& [ticket, w] : waits_) waits.push_back({w, false});
    threads.reserve(threads_.size());
    for (const auto& [id, t] : threads_) threads.push_back({t});
    ever = ever_threads_;
    released_below = barrier_released_below_;
    tracked_gen = barrier_gen_;
    gen_untracked = barrier_untracked_;
    arrived = barrier_arrived_;
  }

  // Verify each wait is stable (older than the grace period) and not
  // logically released — a matching message already in the mailbox, or a
  // completed barrier generation means the thread just hasn't been
  // scheduled yet. Probing takes mailbox mutexes, so our own mutex is not
  // held here.
  const auto grace = std::chrono::milliseconds(opts_.grace_ms);
  bool any_stable = false;
  for (WaitCopy& wc : waits) {
    if (now - wc.w.since < grace) {
      wc.released = true;
      continue;
    }
    if (wc.w.kind == WaitInfo::Kind::kRecv) {
      if (wc.w.mailbox->probe(wc.w.source, wc.w.tag).has_value()) {
        wc.released = true;
      }
    } else {
      if (wc.w.gen < released_below || wc.w.gen != tracked_gen ||
          gen_untracked) {
        wc.released = true;
      }
    }
    if (!wc.released) any_stable = true;
  }
  if (!any_stable) {
    prev_candidate_.clear();
    return;
  }

  // Messages still delayed inside the chaos delayer count as progress in
  // flight.
  if (const ChaosDelayer* chaos = world_->chaos(); chaos && !chaos->idle()) {
    prev_candidate_.clear();
    return;
  }

  // Per-rank view: a rank is a deadlock candidate only when it has at
  // least one live registered thread and every one of them is stably
  // blocked (or idle-polling past the grace period).
  struct RankView {
    bool has_live = false;
    bool all_blocked = true;
    bool exited = false;
    std::vector<const WaitInfo*> stable;
  };
  std::vector<RankView> ranks(static_cast<std::size_t>(nranks_));
  for (const WaitCopy& wc : waits) {
    if (!wc.released && wc.w.rank >= 0 && wc.w.rank < nranks_) {
      ranks[static_cast<std::size_t>(wc.w.rank)].stable.push_back(&wc.w);
    }
  }
  for (const ThreadCopy& tc : threads) {
    if (tc.t.rank < 0 || tc.t.rank >= nranks_) continue;
    RankView& rv = ranks[static_cast<std::size_t>(tc.t.rank)];
    rv.has_live = true;
    switch (tc.t.state) {
      case ThreadState::kRunning:
        rv.all_blocked = false;
        break;
      case ThreadState::kIdlePoll:
        if (now - tc.t.since < grace) rv.all_blocked = false;
        break;
      case ThreadState::kRecvWait:
      case ThreadState::kBarrierWait: {
        const bool stable =
            std::any_of(rv.stable.begin(), rv.stable.end(),
                        [&](const WaitInfo* w) {
                          return w->ticket == tc.t.ticket;
                        });
        if (!stable) rv.all_blocked = false;
        break;
      }
    }
  }
  for (int r = 0; r < nranks_; ++r) {
    RankView& rv = ranks[static_cast<std::size_t>(r)];
    rv.exited = !rv.has_live && ever[static_cast<std::size_t>(r)] > 0;
    if (!rv.has_live || !rv.all_blocked) continue;
    // A queued message that is not a protocol reply could still be consumed
    // by a thread we do not know about — treat the rank as live then.
    const Mailbox* mb = mailboxes_[static_cast<std::size_t>(r)];
    if (mb != nullptr) {
      for (const MessageInfo& info : mb->pending_info()) {
        if (!is_reply_tag(info.tag)) {
          rv.all_blocked = false;
          break;
        }
      }
    }
  }

  // Greatest fixpoint: start from every candidate rank and evict any whose
  // wait could still be satisfied by a rank outside the frozen set. What
  // remains is a set of ranks that provably cannot unblock each other.
  std::vector<char> frozen(static_cast<std::size_t>(nranks_), 0);
  for (int r = 0; r < nranks_; ++r) {
    const RankView& rv = ranks[static_cast<std::size_t>(r)];
    frozen[static_cast<std::size_t>(r)] = rv.has_live && rv.all_blocked;
  }
  const auto inert = [&](int r) {
    return frozen[static_cast<std::size_t>(r)] != 0 ||
           ranks[static_cast<std::size_t>(r)].exited;
  };
  bool changed = true;
  while (changed) {
    changed = false;
    for (int r = 0; r < nranks_; ++r) {
      if (frozen[static_cast<std::size_t>(r)] == 0) continue;
      bool still = true;
      for (const WaitInfo* w : ranks[static_cast<std::size_t>(r)].stable) {
        if (w->kind == WaitInfo::Kind::kRecv) {
          if (w->source != kAnySource) {
            if (!inert(w->source)) still = false;
          } else {
            for (int s = 0; s < nranks_ && still; ++s) {
              if (s != r && !inert(s)) still = false;
            }
          }
        } else {
          for (int s = 0; s < nranks_ && still; ++s) {
            if (arrived[static_cast<std::size_t>(s)] == 0 && !inert(s)) {
              still = false;
            }
          }
        }
        if (!still) break;
      }
      if (!still) {
        frozen[static_cast<std::size_t>(r)] = 0;
        changed = true;
      }
    }
  }

  std::vector<std::uint64_t> fingerprint;
  std::size_t frozen_waits = 0;
  for (int r = 0; r < nranks_; ++r) {
    if (frozen[static_cast<std::size_t>(r)] == 0) continue;
    fingerprint.push_back(static_cast<std::uint64_t>(r) << 48);
    for (const WaitInfo* w : ranks[static_cast<std::size_t>(r)].stable) {
      fingerprint.push_back(w->ticket);
      ++frozen_waits;
    }
  }
  if (fingerprint.empty() || frozen_waits == 0) {
    prev_candidate_.clear();
    return;
  }
  std::sort(fingerprint.begin(), fingerprint.end());

  const std::uint64_t after[3] = {
      stat_read(deliveries_),
      stat_read(consumes_),
      stat_read(arrivals_)};
  if (after[0] != before[0] || after[1] != before[1] ||
      after[2] != before[2]) {
    // Progress raced our probes; this tick proves nothing.
    prev_candidate_.clear();
    return;
  }
  if (fingerprint != prev_candidate_ || before[0] != prev_counters_[0] ||
      before[1] != prev_counters_[1] || before[2] != prev_counters_[2]) {
    // New candidate: require it to persist, untouched, into the next tick.
    prev_candidate_ = std::move(fingerprint);
    prev_counters_[0] = after[0];
    prev_counters_[1] = after[1];
    prev_counters_[2] = after[2];
    return;
  }

  // Confirmed. Compose the report: wait-for chain first, then the full
  // per-thread state dump and queued envelopes of the frozen ranks.
  std::ostringstream out;
  int nfrozen = 0;
  for (int r = 0; r < nranks_; ++r) {
    nfrozen += frozen[static_cast<std::size_t>(r)] != 0 ? 1 : 0;
  }
  out << "rtm-check: deadlock detected — " << nfrozen
      << " rank(s) cannot make progress\n";

  // Follow one dependency out of each frozen rank until a rank repeats:
  // that suffix is a wait-for cycle (or ends at an exited rank).
  {
    const auto dependency = [&](int r) -> int {
      for (const WaitInfo* w : ranks[static_cast<std::size_t>(r)].stable) {
        if (w->kind == WaitInfo::Kind::kRecv && w->source != kAnySource &&
            frozen[static_cast<std::size_t>(w->source)] != 0) {
          return w->source;
        }
      }
      for (const WaitInfo* w : ranks[static_cast<std::size_t>(r)].stable) {
        if (w->kind == WaitInfo::Kind::kRecv && w->source != kAnySource &&
            ranks[static_cast<std::size_t>(w->source)].exited) {
          return ~w->source;  // bit-complement marks an exited dependency
        }
      }
      for (int s = 0; s < nranks_; ++s) {
        if (s != r && frozen[static_cast<std::size_t>(s)] != 0) return s;
      }
      return r;
    };
    int start = 0;
    while (start < nranks_ && frozen[static_cast<std::size_t>(start)] == 0) {
      ++start;
    }
    std::vector<char> seen(static_cast<std::size_t>(nranks_), 0);
    out << "wait-for chain: rank " << start;
    int at = start;
    while (seen[static_cast<std::size_t>(at)] == 0) {
      seen[static_cast<std::size_t>(at)] = 1;
      const int next = dependency(at);
      if (next < 0) {
        out << " -> rank " << ~next << " (exited)";
        break;
      }
      out << " -> rank " << next;
      at = next;
    }
    out << '\n';
  }

  out << "per-thread state:\n";
  for (const ThreadCopy& tc : threads) {
    out << "  rank " << tc.t.rank << " [" << role_name(tc.t.role) << "] ";
    switch (tc.t.state) {
      case ThreadState::kRunning:
        out << "running";
        break;
      case ThreadState::kIdlePoll:
        out << "idle-polling";
        break;
      case ThreadState::kRecvWait:
      case ThreadState::kBarrierWait:
        for (const WaitCopy& wc : waits) {
          if (wc.w.ticket != tc.t.ticket) continue;
          if (wc.w.kind == WaitInfo::Kind::kRecv) {
            out << "blocked in recv(" << envelope(wc.w.source, wc.w.tag)
                << ")";
          } else {
            out << "blocked in barrier(generation " << wc.w.gen << ")";
          }
          break;
        }
        break;
    }
    out << " for " << ms_since(tc.t.since, now) << " ms\n";
  }
  for (int r = 0; r < nranks_; ++r) {
    if (ranks[static_cast<std::size_t>(r)].exited) {
      out << "  rank " << r << " exited\n";
    }
  }
  out << "mailbox queues of frozen ranks:\n";
  for (int r = 0; r < nranks_; ++r) {
    if (frozen[static_cast<std::size_t>(r)] == 0) continue;
    const Mailbox* mb = mailboxes_[static_cast<std::size_t>(r)];
    const auto pending = mb != nullptr ? mb->pending_info()
                                       : std::vector<MessageInfo>{};
    out << "  rank " << r << ": " << pending.size() << " queued";
    for (const MessageInfo& info : pending) {
      out << " [" << envelope(info.source, info.tag) << " " << info.bytes
          << "B]";
    }
    out << '\n';
  }

  // Flight-recorder tails for the frozen ranks only: their threads are
  // provably blocked (stable, re-verified waits), so their rings are
  // quiescent and the happens-before edge runs through the checker mutex
  // each wait registration took. Threads of non-frozen ranks may still be
  // recording; their rings are deliberately not read here.
  {
    std::vector<int> frozen_ranks;
    for (int r = 0; r < nranks_; ++r) {
      if (frozen[static_cast<std::size_t>(r)] != 0) frozen_ranks.push_back(r);
    }
    const std::string tail = obs::Tracer::instance().tail_text(
        kFlightTailEvents, frozen_ranks);
    if (!tail.empty()) {
      out << "flight recorder (most recent events of frozen ranks):\n"
          << tail;
    }
  }

  abort_report_ = out.str();
  // mo: release publishes abort_report_ to every acquire load of the flag
  // (watchdog loop, RunChecker::aborted()).
  aborted_.store(true, std::memory_order_release);
  // Wake every blocked thread promptly: they poll `aborted()` on their
  // wait slices and unwind with DeadlockError carrying this report.
}

// --- end of run -----------------------------------------------------------

bool RunChecker::leak_is_stale(int rank, const Message& m) {
  if (opts_.tags.empty()) return false;
  const TagRule* rule = rule_for(m.tag);
  if (rule == nullptr) return false;
  // Best-effort messages are allowed to outlive their listeners (the
  // receiver stops draining once it has what it needs); a leftover copy is
  // explained by the protocol itself.
  if (rule->best_effort) return true;
  std::lock_guard lock(lint_mutex_);
  if (rule->dir == TagDir::kReply) {
    // A reply leaked in the requester's mailbox: stale iff its seq was
    // already served (the requester had moved on — retransmission race).
    if (rule->seq_of == nullptr) return false;
    std::uint64_t seq = 0;
    if (!rule->seq_of(m.payload, &seq) || seq == 0) return false;
    const auto it = outstanding_.find(std::make_tuple(m.source, rank, m.tag));
    if (it == outstanding_.end()) return false;
    return it->second.answered.contains(seq) ||
           it->second.dropped.contains(seq);
  }
  // A request leaked in the responder's mailbox: stale iff it is a
  // duplicate/retransmission of a request that was already answered.
  if (rule->pair == nullptr || m.payload.size() < rule->min_bytes) {
    return false;
  }
  int reply_tag = 0;
  std::size_t reply_bytes = 0;
  std::uint64_t seq = 0;
  std::string err;
  if (!rule->pair(m.payload, &reply_tag, &reply_bytes, &seq, &err) ||
      seq == 0) {
    return false;
  }
  const auto it = outstanding_.find(std::make_tuple(rank, m.source, reply_tag));
  if (it == outstanding_.end()) return false;
  return it->second.answered.contains(seq) || it->second.dropped.contains(seq);
}

void RunChecker::finalize() {
  stop_watchdog();
  if (finalized_) return;
  finalized_ = true;

  std::ostringstream out;
  bool audit_failed = false;
  if (opts_.audit) {
    for (int r = 0; r < nranks_; ++r) {
      const Mailbox* mb = mailboxes_[static_cast<std::size_t>(r)];
      if (mb == nullptr) continue;
      CheckSnapshot& extra = final_[static_cast<std::size_t>(r)];
      mb->for_each_pending([&](const Message& m) {
        // A leaked message whose protocol sequence number was already
        // answered (or whose request copy was dropped) is explained by the
        // retry/duplication machinery: audit it as stale, not as a leak.
        if (leak_is_stale(r, m)) {
          ++extra.stale_leaks;
          out << "rank " << r << ": stale leftover ("
              << envelope(m.source, m.tag) << ", " << m.payload.size()
              << " bytes) — explained by retries/duplication\n";
          return;
        }
        ++extra.leaked_messages;
        audit_failed = true;
        const bool orphan = is_reply_tag(m.tag);
        if (orphan) ++extra.orphaned_replies;
        out << "rank " << r << ": leaked message ("
            << envelope(m.source, m.tag) << ", " << m.payload.size()
            << " bytes)" << (orphan ? " — orphaned reply" : "") << '\n';
      });
    }
  }
  {
    std::lock_guard lock(lint_mutex_);
    for (const auto& [key, ledger] : outstanding_) {
      const auto& [responder, requester, reply_tag] = key;
      const std::size_t open = ledger.pending.size() + ledger.legacy.size();
      if (open == 0) continue;
      final_[static_cast<std::size_t>(requester)].unanswered_requests += open;
      audit_failed = true;
      out << "rank " << requester << ": " << open
          << " request(s) to rank " << responder
          << " never answered (expected reply tag " << reply_tag << ")\n";
    }
  }
  {
    std::lock_guard lock(mutex_);
    for (const std::string& note : notes_) out << note << '\n';
  }
  if (audit_failed) {
    // Post-join, so every thread's ring is safe to read: the timelines
    // leading up to the leak/unanswered request come with the report.
    const std::string tail =
        obs::Tracer::instance().tail_text(kFlightTailEvents);
    if (!tail.empty()) {
      out << "flight recorder (most recent events per thread):\n" << tail;
    }
  }
  final_report_ = out.str();
}

CheckSnapshot RunChecker::snapshot(int rank) const {
  const RankCounters& c = counters_[static_cast<std::size_t>(rank)];
  CheckSnapshot s = final_[static_cast<std::size_t>(rank)];
  s.msgs_delivered = stat_read(c.delivered);
  s.msgs_consumed = stat_read(c.consumed);
  s.fifo_violations = stat_read(c.fifo_violations);
  s.lint_checked = stat_read(c.lint_checked);
  s.waits_registered = stat_read(c.waits);
  s.max_pending_at_barrier =
      stat_read(c.max_pending_barrier);
  s.retransmits = stat_read(c.retransmits);
  s.stale_reply_sends = stat_read(c.stale_reply_sends);
  s.chaos_dropped = stat_read(c.chaos_dropped);
  s.chaos_duplicated = stat_read(c.chaos_duplicated);
  s.chaos_truncated = stat_read(c.chaos_truncated);
  return s;
}

std::string RunChecker::final_report() const { return final_report_; }

}  // namespace reptile::rtm::check
