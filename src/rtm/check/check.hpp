#pragma once
// rtm-check: concurrency and protocol analysis for the threaded MPI runtime.
//
// Three cooperating detectors watch a run through lightweight hooks in
// Mailbox, Barrier, Comm and the communication threads:
//
//  1. Wait-for-graph deadlock detector. Every blocking receive and barrier
//     wait registers a (rank, peer, tag) edge; a watchdog thread
//     periodically computes the set of ranks whose every live thread is
//     provably stuck — a greatest fixpoint over the wait-for graph, with
//     each candidate wait re-verified against the live mailbox / barrier
//     state so scheduler lag can never yield a false verdict. On detection
//     the run aborts with a wait-for cycle and a full per-thread state dump
//     instead of hanging.
//
//  2. Mailbox audit. Deliveries are stamped with per-(source, tag) sequence
//     numbers and pops verify the FIFO non-overtaking guarantee documented
//     in mailbox.hpp. Queue depth is sampled at phase boundaries (barriers),
//     and messages still unconsumed when the run ends are reported as leaks
//     (orphaned replies are classified separately via the tag table).
//
//  3. Protocol linter. Every point-to-point send is checked against a
//     declarative tag table (direction, payload size bounds, request/reply
//     pairing); malformed traffic throws ProtocolError at the send site,
//     naming rank and tag. The table for the correction-phase lookup
//     protocol lives in parallel/protocol_table.hpp, derived from
//     parallel/protocol.hpp and parallel/wire.hpp.
//
//     Sequenced traffic (requests carrying a non-zero protocol sequence
//     number, see parallel::RetryPolicy) is audited rather than merely
//     FIFO-paired: retransmissions of an outstanding request are counted,
//     duplicate replies to an already-answered request are recognised as
//     stale (not flagged as orphans), and the fault injector reports its
//     own drops/duplicates/truncations through the on_chaos_* hooks so a
//     dropped request is not misreported as unanswered at finalize.
//
// Enabled per run through rtm::RunOptions::check — on by default so every
// test runs checked; benchmarks switch it off. Hook state is either guarded
// by the owning mailbox's mutex, atomic, or behind the checker's own mutex,
// keeping the checker itself ThreadSanitizer-clean.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <limits>
#include <map>
#include <mutex>
#include <span>
#include <stdexcept>
#include <string>
#include <thread>
#include <tuple>
#include <unordered_map>
#include <vector>

#include "rtm/message.hpp"

namespace reptile::rtm {

class Mailbox;
class Barrier;
class World;

namespace check {

/// Thrown by Comm::send when a message violates the protocol tag table.
class ProtocolError : public std::runtime_error {
 public:
  explicit ProtocolError(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown out of blocking waits once the watchdog has diagnosed a deadlock;
/// what() carries the wait-for cycle and the per-thread state dump.
class DeadlockError : public std::runtime_error {
 public:
  explicit DeadlockError(const std::string& what) : std::runtime_error(what) {}
};

enum class TagDir { kRequest, kReply };

/// One row of the declarative protocol table: a contiguous tag range with a
/// direction, payload size bounds, and — for requests — a parser that
/// yields the reply envelope the receiver must answer with.
struct TagRule {
  int first_tag = 0;
  int last_tag = 0;  ///< inclusive
  const char* name = "";
  TagDir dir = TagDir::kRequest;
  std::size_t min_bytes = 0;
  std::size_t max_bytes = std::numeric_limits<std::size_t>::max();
  /// Request rules only: extracts the reply tag, the exact reply payload
  /// size, and the protocol sequence number (0 = unsequenced) from a
  /// request payload (request/reply pairing). Returns false with *err
  /// describing the malformation.
  bool (*pair)(std::span<const std::byte> payload, int* reply_tag,
               std::size_t* reply_bytes, std::uint64_t* seq,
               std::string* err) = nullptr;
  /// Reply rules only: extracts the echoed sequence number from a reply
  /// payload (0 = unsequenced). Returns false when the payload is too short
  /// to carry one.
  bool (*seq_of)(std::span<const std::byte> payload,
                 std::uint64_t* seq) = nullptr;
  /// Fire-and-forget best-effort messages (e.g. the filter exchange): a
  /// receiver may legally stop listening before every copy arrives — chaos
  /// drops and stall-delayed stragglers are part of the contract — so a
  /// leftover in a mailbox at finalize is audited as stale, not as a leak.
  bool best_effort = false;
};

using TagTable = std::vector<TagRule>;

/// Per-run configuration, carried by rtm::RunOptions.
struct Options {
  bool enabled = true;   ///< master switch for all three detectors
  bool audit = true;     ///< mailbox FIFO / leak audit
  bool lint = true;      ///< protocol linter (idle while `tags` is empty)
  bool deadlock = true;  ///< wait-for-graph watchdog
  /// Treat tags absent from `tags` as protocol violations. Only sane when
  /// the table covers every tag the run may legally send; the distributed
  /// pipeline turns this on together with the lookup protocol table.
  bool strict_tags = false;
  /// Minimum age of a blocking wait before it can enter a deadlock verdict.
  int grace_ms = 250;
  /// Watchdog sampling period; also the poll slice of checked blocking
  /// waits, i.e. the abort latency once a deadlock is diagnosed.
  int poll_ms = 20;
  TagTable tags;  ///< linter table; empty disables per-tag checks
};

/// What a registered thread contributes to a rank (state dumps only).
enum class ThreadRole { kMain, kWorker, kService, kOther };

/// Live per-rank counters, surfaced into the per-rank stats report.
struct CheckSnapshot {
  std::uint64_t msgs_delivered = 0;   ///< pushes into this rank's mailbox
  std::uint64_t msgs_consumed = 0;    ///< pops out of this rank's mailbox
  std::uint64_t fifo_violations = 0;  ///< non-overtaking violations seen
  std::uint64_t lint_checked = 0;     ///< sends by this rank the linter saw
  std::uint64_t waits_registered = 0;  ///< blocking waits entered
  std::uint64_t max_pending_at_barrier = 0;  ///< queue depth at phase bounds
  // Sequenced-protocol audit (0 everywhere for fault-free runs):
  std::uint64_t retransmits = 0;  ///< requests re-sent with a known seq
  std::uint64_t stale_reply_sends = 0;  ///< replies to already-answered seqs
  // Fault-injector activity, attributed to the SENDING rank:
  std::uint64_t chaos_dropped = 0;
  std::uint64_t chaos_duplicated = 0;
  std::uint64_t chaos_truncated = 0;
  // Filled in by finalize(), after every rank thread has joined:
  std::uint64_t leaked_messages = 0;  ///< unconsumed at run end
  std::uint64_t orphaned_replies = 0;  ///< leaks carrying a reply-range tag
  std::uint64_t unanswered_requests = 0;  ///< requests sent, never replied
  std::uint64_t stale_leaks = 0;  ///< leaks explained by retries/duplication
};

class RunChecker;

/// RAII registration of the calling thread with the checker, so the
/// deadlock detector knows which threads belong to which rank and can tell
/// "every thread of rank r is blocked" from "rank r has work in flight".
/// No-op (but safe) when the thread is already registered.
class ThreadScope {
 public:
  ThreadScope(RunChecker& check, int rank, ThreadRole role);
  ~ThreadScope();

  ThreadScope(const ThreadScope&) = delete;
  ThreadScope& operator=(const ThreadScope&) = delete;

 private:
  RunChecker* check_;
  bool registered_;
};

/// One checker instance per World, owned by it (see World::enable_check).
/// Mailbox / Barrier hooks attach on construction and detach in the
/// destructor, so late deliveries (e.g. the chaos drain) stay safe.
class RunChecker {
 public:
  RunChecker(const Options& options, int nranks, World* world);
  ~RunChecker();

  RunChecker(const RunChecker&) = delete;
  RunChecker& operator=(const RunChecker&) = delete;

  const Options& options() const noexcept { return opts_; }

  std::chrono::milliseconds poll_interval() const noexcept {
    return std::chrono::milliseconds(opts_.poll_ms);
  }

  // --- abort flag (deadlock verdict) ------------------------------------

  /// True once the watchdog has diagnosed a deadlock; blocking waits poll
  /// this and unwind through throw_abort().
  bool aborted() const noexcept {
    // mo: acquire pairs with the release store that publishes the abort
    // report; a `true` here guarantees throw_abort() sees the full text.
    return aborted_.load(std::memory_order_acquire);
  }

  [[noreturn]] void throw_abort() const;

  // --- thread registry ---------------------------------------------------

  /// Returns false if the calling thread is already registered.
  bool register_thread(int rank, ThreadRole role);
  void unregister_thread();

  /// Marks the calling thread as making progress (communication threads
  /// call this when they pick up a request)...
  void thread_active();
  /// ...and as idle-polling when a timed receive comes back empty. An
  /// idle-polling communication thread does not keep its rank "live" for
  /// deadlock purposes: it only reacts to messages that will never come.
  void thread_idle_poll();

  // --- mailbox hooks (called with the mailbox mutex held) ---------------

  void on_push(int rank, Message& m);
  void on_pop(int rank, const Message& m);

  // --- blocking-wait hooks ----------------------------------------------

  std::uint64_t begin_recv_wait(int rank, int source, int tag,
                                const Mailbox* mailbox);
  void end_recv_wait(std::uint64_t ticket);

  /// `released` marks the arrival that completed generation `gen`.
  void on_barrier_arrive(int rank, std::uint64_t gen, bool released);
  std::uint64_t begin_barrier_wait(int rank, std::uint64_t gen);
  void end_barrier_wait(std::uint64_t ticket);

  // --- linter / phase hooks ---------------------------------------------

  /// Lints one point-to-point send; throws ProtocolError on violation.
  void on_send(int src, int dst, int tag,
               std::span<const std::byte> payload);

  // --- chaos hooks (called by the fault injector, see rtm/chaos.hpp) -----

  /// A send from m.source to `dst` was discarded. Removes the matching
  /// outstanding-request ledger entry (if the message was a sequenced
  /// request) so the drop is not misreported as unanswered at finalize.
  void on_chaos_drop(int dst, const Message& m);
  /// A send from m.source to `dst` was queued twice.
  void on_chaos_duplicate(int dst, const Message& m);
  /// A send from m.source to `dst` had its payload truncated (m carries the
  /// already-truncated payload).
  void on_chaos_truncate(int dst, const Message& m);

  /// Called at every barrier entry with the rank's queued-message count.
  void on_phase_boundary(int rank, std::size_t pending);

  // --- wiring (World::enable_check) -------------------------------------

  void attach_mailbox(int rank, Mailbox* mailbox);
  void attach_barrier(Barrier* barrier);
  /// Starts the watchdog thread (after the hooks are attached).
  void start();

  // --- end of run --------------------------------------------------------

  /// Run-end audit: stops the watchdog, flags unconsumed messages (leaks /
  /// orphaned replies) and unanswered requests. Called by run_world after
  /// the rank threads joined; idempotent.
  void finalize();

  /// Per-rank counters; includes finalize() results once it ran.
  CheckSnapshot snapshot(int rank) const;

  /// Human-readable audit summary (empty string before finalize()).
  std::string final_report() const;

 private:
  struct WaitInfo {
    enum class Kind { kRecv, kBarrier };
    std::uint64_t ticket = 0;
    int rank = -1;
    Kind kind = Kind::kRecv;
    int source = kAnySource;  ///< recv waits
    int tag = kAnyTag;        ///< recv waits
    const Mailbox* mailbox = nullptr;  ///< recv waits
    std::uint64_t gen = 0;    ///< barrier waits
    std::chrono::steady_clock::time_point since{};
  };

  enum class ThreadState { kRunning, kRecvWait, kBarrierWait, kIdlePoll };

  struct ThreadInfo {
    int rank = -1;
    ThreadRole role = ThreadRole::kOther;
    ThreadState state = ThreadState::kRunning;
    std::chrono::steady_clock::time_point since{};
    std::uint64_t ticket = 0;  ///< wait ticket while in a wait state
  };

  struct Stream {
    std::uint64_t pushed = 0;
    std::uint64_t popped = 0;
  };

  struct RankCounters {
    std::atomic<std::uint64_t> delivered{0};
    std::atomic<std::uint64_t> consumed{0};
    std::atomic<std::uint64_t> fifo_violations{0};
    std::atomic<std::uint64_t> lint_checked{0};
    std::atomic<std::uint64_t> waits{0};
    std::atomic<std::uint64_t> max_pending_barrier{0};
    std::atomic<std::uint64_t> retransmits{0};
    std::atomic<std::uint64_t> stale_reply_sends{0};
    std::atomic<std::uint64_t> chaos_dropped{0};
    std::atomic<std::uint64_t> chaos_duplicated{0};
    std::atomic<std::uint64_t> chaos_truncated{0};
  };

  static std::uint64_t stream_key(int source, int tag) noexcept {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(source))
            << 32) |
           static_cast<std::uint32_t>(tag);
  }

  const TagRule* rule_for(int tag) const noexcept;
  bool is_reply_tag(int tag) const noexcept;
  /// Finalize helper: is this leaked message explained by the sequenced
  /// retry/duplication protocol (its seq already answered or its request
  /// copy dropped)? Takes lint_mutex_.
  bool leak_is_stale(int rank, const Message& m);
  ThreadInfo& thread_entry_locked(int rank);
  void note_locked(std::string text);
  void stop_watchdog();
  void watchdog_main();
  /// One watchdog tick: copy state, verify stability, compute the frozen
  /// set, and abort the run when a candidate persists across two ticks.
  void evaluate();

  Options opts_;
  int nranks_;
  World* world_;

  // Per-rank FIFO audit streams. Each rank's map is touched only under
  // that rank's mailbox mutex (on_push / on_pop are hook calls from inside
  // the mailbox), so the vector needs no lock of its own after setup.
  std::vector<std::unordered_map<std::uint64_t, Stream>> streams_;
  std::vector<Mailbox*> mailboxes_;
  Barrier* barrier_ = nullptr;

  std::vector<RankCounters> counters_;

  // Global activity counters, compared across a watchdog tick to detect
  // progress racing the probes (relaxed: counts only, no ordering needed).
  std::atomic<std::uint64_t> deliveries_{0};
  std::atomic<std::uint64_t> consumes_{0};
  std::atomic<std::uint64_t> arrivals_{0};

  // Registry of threads and outstanding blocking waits.
  mutable std::mutex mutex_;
  std::unordered_map<std::thread::id, ThreadInfo> threads_;
  std::map<std::uint64_t, WaitInfo> waits_;
  std::vector<int> ever_threads_;  ///< per rank: threads ever registered
  std::uint64_t next_ticket_ = 1;
  std::uint64_t barrier_gen_ = 0;        ///< generation being tracked
  std::uint64_t barrier_released_below_ = 0;  ///< gens < this are complete
  std::vector<char> barrier_arrived_;
  bool barrier_untracked_ = false;  ///< an arrival carried no rank id
  std::vector<std::string> notes_;  ///< FIFO-violation details (capped)

  // Request/reply pairing, one ledger per (responder, requester, reply tag)
  // stream. Unsequenced traffic (seq == 0) keeps the original FIFO-of-sizes
  // semantics in `legacy`; sequenced traffic matches by sequence number and
  // additionally remembers answered seqs (bounded) so retransmissions and
  // duplicate replies can be classified instead of flagged.
  struct PairLedger {
    struct Pending {
      std::uint64_t seq = 0;
      std::size_t bytes = 0;
    };
    std::vector<Pending> pending;     ///< sequenced outstanding requests
    std::vector<std::size_t> legacy;  ///< seq==0: FIFO of expected sizes
    std::unordered_map<std::uint64_t, std::size_t> answered;  ///< seq->bytes
    std::deque<std::uint64_t> answered_order;  ///< eviction FIFO
    /// Seqs whose (last) request copy the chaos layer dropped: no longer
    /// expected to be answered, but an EARLIER copy of the same seq may
    /// still be in flight, so a reply remains legal (not an orphan).
    std::unordered_map<std::uint64_t, std::size_t> dropped;  ///< seq->bytes
  };
  /// How many answered seqs each ledger remembers for stale classification.
  static constexpr std::size_t kAnsweredCap = 8192;

  std::mutex lint_mutex_;
  std::map<std::tuple<int, int, int>, PairLedger> outstanding_;

  std::atomic<bool> aborted_{false};
  std::string abort_report_;  ///< written before aborted_ (release store)

  // Finalize results (main thread only, after the rank threads joined).
  bool finalized_ = false;
  std::vector<CheckSnapshot> final_;
  std::string final_report_;

  // Watchdog.
  std::mutex stop_mutex_;
  std::condition_variable stop_cv_;
  bool stop_ = false;
  std::thread watchdog_;
  // Candidate memory: a verdict needs the same frozen set with unchanged
  // activity counters on two consecutive ticks.
  std::vector<std::uint64_t> prev_candidate_;
  std::uint64_t prev_counters_[3] = {0, 0, 0};
};

}  // namespace check
}  // namespace reptile::rtm
