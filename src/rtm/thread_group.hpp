#pragma once
// RAII lifecycle for a stage's helper threads (Step IV forks a worker and a
// communication thread per rank; the fully-replicated baseline forks a
// master thread).
//
// Invariants the group enforces, replacing the ad-hoc joiner structs that
// used to live inline in the drivers:
//   - an exception escaping any thread (or the inline body) is captured,
//     never allowed to reach std::thread's terminate path;
//   - only the FIRST captured exception is kept (the one a caller rethrows);
//   - the optional before_join callback runs exactly once before the first
//     join — on the normal path and on exception unwind alike. The drivers
//     use it for Comm::signal_done(), which must precede joining the
//     communication thread (the service loops until every rank is done) and
//     must not run twice;
//   - the destructor joins, so no scope exit — including unwind from a
//     throwing stage — leaks a joinable thread.

#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace reptile::rtm {

class ScopedThreadGroup {
 public:
  ScopedThreadGroup() = default;

  /// `before_join` runs exactly once, immediately before the first join()
  /// (explicit or from the destructor), even if no thread was ever spawned.
  explicit ScopedThreadGroup(std::function<void()> before_join)
      : before_join_(std::move(before_join)) {}

  ScopedThreadGroup(const ScopedThreadGroup&) = delete;
  ScopedThreadGroup& operator=(const ScopedThreadGroup&) = delete;

  ~ScopedThreadGroup() { join(); }

  /// Starts a thread running `fn`; an escaping exception is captured as the
  /// group's first error instead of terminating the process.
  template <class Fn>
  void spawn(Fn&& fn) {
    threads_.emplace_back(
        [this, f = std::forward<Fn>(fn)]() mutable { run_capturing(f); });
  }

  /// Runs `fn` on the calling thread with the same error capture as
  /// spawn(); the error surfaces from join_and_rethrow(), after every
  /// sibling thread has been joined.
  template <class Fn>
  void run_inline(Fn&& fn) {
    run_capturing(fn);
  }

  /// Runs before_join (first call only), then joins every thread.
  /// Idempotent; never throws the captured error.
  void join() {
    if (!before_join_ran_) {
      before_join_ran_ = true;
      if (before_join_) before_join_();
    }
    for (auto& t : threads_) {
      if (t.joinable()) t.join();
    }
  }

  /// join(), then rethrows the first captured exception, if any (clearing
  /// it, so the destructor's join stays quiet).
  void join_and_rethrow() {
    join();
    std::exception_ptr err;
    {
      std::lock_guard lock(mutex_);
      err = std::exchange(error_, nullptr);
    }
    if (err) std::rethrow_exception(err);
  }

  /// The first exception captured so far (null when none).
  std::exception_ptr first_error() const {
    std::lock_guard lock(mutex_);
    return error_;
  }

 private:
  template <class Fn>
  void run_capturing(Fn& fn) {
    try {
      fn();
    } catch (...) {
      std::lock_guard lock(mutex_);
      if (!error_) error_ = std::current_exception();
    }
  }

  std::function<void()> before_join_;
  bool before_join_ran_ = false;
  std::vector<std::thread> threads_;
  mutable std::mutex mutex_;
  std::exception_ptr error_;
};

}  // namespace reptile::rtm
