#pragma once
// Bounded lock-free MPMC ring: the mailbox fast path.
//
// Layout follows the classic sequence-stamped-cell bounded queue: each cell
// carries an atomic sequence number that encodes whose turn the cell is.
// For enqueue position `pos`, `seq == pos` means the cell is free for the
// producer claiming `pos`; after publication `seq == pos + 1` signals the
// consumer claiming `pos`; the consumer finally stores `seq = pos +
// capacity` handing the cell to the producer one lap later. Claims go
// through compare-exchange on two monotonically increasing 64-bit
// positions, so there is no ABA window (positions never repeat).
//
// Two rtm-specific extensions (memory-ordering argument in DESIGN.md §7):
//
// 1. Envelope word. Each cell also carries an atomic (source, tag) word,
//    written by the producer BEFORE the sequence release-store. A consumer
//    that observed `seq == pos + 1` with an acquire load may therefore read
//    the envelope (and, after winning the claim CAS, the message) without
//    a data race. This is what lets `try_pop_exact` peek at the head's
//    envelope and refuse non-matching heads without consuming them —
//    selective receive on a lock-free queue.
//
// 2. Consumer-lock bit. The top bit of `dequeue_pos_` is reserved as a
//    flag owned by the mailbox mutex: it is set while a locked consumer
//    drains or scans, and stays set as long as the mailbox's overflow
//    deque is non-empty. The fast pop's claim CAS uses an expected value
//    with the bit CLEAR, so a successful claim atomically proves both
//    "no locked consumer is mid-drain" and "no older message is parked in
//    the deque" — the claimed head is the globally oldest message for its
//    stream, preserving the per-(source, tag) FIFO guarantee. Producers
//    never touch `dequeue_pos_`, so the bit costs them nothing.
//
// The ring stores whole Message values. Non-atomic message reads/writes are
// ordered by the seq acquire/release pairs above; every claim is finalized
// by a successful CAS on the position counter, so exactly one thread ever
// touches a cell's message between two sequence transitions.
//
// The class is templated on an Atomics policy (rtm/atomics_policy.hpp):
// production uses StdAtomics (identical codegen to hand-written
// std::atomic); the model checker instantiates the same code with
// instrumented atomics and explores its interleavings (DESIGN.md §8).

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>

#include "rtm/atomics_policy.hpp"
#include "rtm/message.hpp"

namespace reptile::rtm {

#ifdef RTM_MODEL_MUTANT_RELAXED_SEQ
namespace mutants {
/// Test-only toggle (model-checker mutant suite): weakens the producer's
/// publishing seq store to relaxed, severing the release/acquire edge that
/// orders the non-atomic message write before the consumer's read. Never
/// defined in production builds.
inline bool g_relaxed_seq_publish = false;
}  // namespace mutants
#endif

/// Packs a message envelope into one atomic word so consumers can inspect
/// a cell's (source, tag) without touching the non-atomic Message. Works
/// for wildcard values too (-1 maps to 0xFFFFFFFF in its half).
constexpr std::uint64_t pack_envelope(int source, int tag) noexcept {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(source)) << 32) |
         static_cast<std::uint64_t>(static_cast<std::uint32_t>(tag));
}

template <class Policy = StdAtomics>
class BasicMpmcMessageRing {
 public:
  enum class PopResult {
    kOk,        ///< head matched and was claimed
    kEmpty,     ///< ring empty (or head not yet published)
    kMismatch,  ///< head published but its envelope differs
    kLocked,    ///< consumer-lock bit set: take the mailbox mutex instead
  };

  /// Capacity must be a power of two, at least 2.
  explicit BasicMpmcMessageRing(std::size_t capacity)
      : capacity_(capacity),
        mask_(capacity - 1),
        cells_(std::make_unique<Cell[]>(capacity)) {
    assert(capacity >= 2 && (capacity & (capacity - 1)) == 0);
    for (std::size_t i = 0; i < capacity; ++i) {
      // mo: single-threaded construction; cells published by whatever
      // mechanism hands the ring to other threads.
      cells_[i].seq.store(i, std::memory_order_relaxed);
    }
  }

  BasicMpmcMessageRing(const BasicMpmcMessageRing&) = delete;
  BasicMpmcMessageRing& operator=(const BasicMpmcMessageRing&) = delete;

  /// Lock-free push. Moves from `m` only on success; returns false when the
  /// ring is full (caller falls back to the mailbox's locked overflow path).
  bool try_push(Message& m) {
    Cell* cell = nullptr;
    // mo: racy position hint only; the claim CAS re-validates.
    std::uint64_t pos = enqueue_pos_.load(std::memory_order_relaxed);
    for (;;) {
      cell = &cells_[pos & mask_];
      // mo: acquire pairs with the consumer's release of `seq = pos +
      // capacity`, ordering the consumer's take of the previous lap's
      // message before this producer's overwrite.
      const std::uint64_t seq = cell->seq.load(std::memory_order_acquire);
      const auto dif =
          static_cast<std::int64_t>(seq) - static_cast<std::int64_t>(pos);
      if (dif == 0) {
        // mo: relaxed claim; the cell handoff itself is ordered by the seq
        // acquire above and the seq release below, not by this counter.
        if (enqueue_pos_.compare_exchange_weak(pos, pos + 1,
                                               std::memory_order_relaxed)) {
          break;
        }
      } else if (dif < 0) {
        return false;  // one full lap behind: ring is full
      } else {
        // mo: fresh hint after losing the claim race (see first load).
        pos = enqueue_pos_.load(std::memory_order_relaxed);
      }
    }
    // mo: relaxed envelope; it is ordered before consumers' reads by the
    // seq release-store below (consumers only read it after acquiring seq).
    cell->envelope.store(pack_envelope(m.source, m.tag),
                         std::memory_order_relaxed);
    put(cell->msg, std::move(m));
#ifdef RTM_MODEL_MUTANT_RELAXED_SEQ
    if (mutants::g_relaxed_seq_publish) {
      // mo: MUTANT — deliberately too weak; the model checker must flag
      // the resulting race on the non-atomic message cell.
      cell->seq.store(pos + 1, std::memory_order_relaxed);
      return true;
    }
#endif
    // mo: release publishes the envelope and message writes above to any
    // consumer that acquires this seq value.
    cell->seq.store(pos + 1, std::memory_order_release);
    return true;
  }

  /// Lock-free pop of the ring HEAD, but only when the head's envelope
  /// equals `envelope` exactly (no wildcards — those take the slow path).
  /// kMismatch never consumes; the caller decides whether to fall back to
  /// the locked path. A stale envelope read (cell recycled between the seq
  /// load and the envelope load) can only produce a spurious kMismatch,
  /// never a wrong claim: the claim CAS on `dequeue_pos_` re-validates the
  /// generation.
  PopResult try_pop_exact(std::uint64_t envelope, Message& out) {
    // mo: acquire so the consumer-lock bit check below observes a bit set
    // by a locked consumer together with the deque state it protects.
    std::uint64_t pos = dequeue_pos_.load(std::memory_order_acquire);
    for (;;) {
      if ((pos & kConsumerLock) != 0) return PopResult::kLocked;
      Cell* cell = &cells_[pos & mask_];
      // mo: acquire pairs with the producer's release publication, making
      // the envelope and message writes visible before we touch them.
      const std::uint64_t seq = cell->seq.load(std::memory_order_acquire);
      const auto dif =
          static_cast<std::int64_t>(seq) - static_cast<std::int64_t>(pos + 1);
      if (dif < 0) return PopResult::kEmpty;  // head not (yet) published
      if (dif > 0) {  // lost a race with another consumer; re-read the head
        // mo: acquire for the same reason as the initial head load.
        pos = dequeue_pos_.load(std::memory_order_acquire);
        continue;
      }
      // mo: relaxed is enough — the envelope store is ordered before the
      // seq publication we already acquired above.
      if (cell->envelope.load(std::memory_order_relaxed) != envelope) {
        return PopResult::kMismatch;
      }
      // mo: acq_rel — acquire re-validates the head under the lock bit;
      // release orders this consumer's claim before its seq hand-back for
      // the producer one lap later.
      if (dequeue_pos_.compare_exchange_weak(pos, pos + 1,
                                             std::memory_order_acq_rel)) {
        out = take(cell->msg);  // take() frees the payload promptly
        // mo: release hands the cell to the producer one lap later,
        // ordering our take of the message before its overwrite.
        cell->seq.store(pos + capacity_, std::memory_order_release);
        return PopResult::kOk;
      }
      // CAS failure reloaded `pos` (possibly with the lock bit); loop.
    }
  }

  /// Sets / clears the consumer-lock bit. Must only be called while holding
  /// the owning mailbox's mutex; atomic RMW because fast pops race with it.
  void set_consumer_lock(bool on) {
    if (on) {
      // mo: acq_rel — release publishes the locked consumer's intent to
      // racing fast-pop CASes; acquire orders the drain that follows after
      // any fast pop that already claimed the old head.
      dequeue_pos_.fetch_or(kConsumerLock, std::memory_order_acq_rel);
    } else {
      // mo: acq_rel for the same pairing in the opposite direction.
      dequeue_pos_.fetch_and(~kConsumerLock, std::memory_order_acq_rel);
    }
  }

  /// Pops the head regardless of envelope. Caller must hold the mailbox
  /// mutex AND have the consumer-lock bit set (which defeats every fast-pop
  /// CAS, making this thread the only consumer). Returns false when the
  /// ring is empty / the head is not yet published.
  bool pop_head_locked(Message& out) {
    // mo: relaxed — dequeue_pos_ is only advanced by consumers, and the
    // lock bit makes this thread the only one; the mailbox mutex ordered
    // any previous locked consumer's advance before this read.
    const std::uint64_t pos =
        dequeue_pos_.load(std::memory_order_relaxed) & ~kConsumerLock;
    Cell* cell = &cells_[pos & mask_];
    // mo: acquire pairs with the producer's release publication (as in
    // try_pop_exact).
    const std::uint64_t seq = cell->seq.load(std::memory_order_acquire);
    if (static_cast<std::int64_t>(seq) - static_cast<std::int64_t>(pos + 1) !=
        0) {
      return false;
    }
    out = take(cell->msg);
    // mo: release hands the cell to the producer one lap later.
    cell->seq.store(pos + capacity_, std::memory_order_release);
    // mo: release so a fast pop that acquires this value (after the lock
    // bit clears) observes the advanced head consistently.
    dequeue_pos_.store((pos + 1) | kConsumerLock, std::memory_order_release);
    return true;
  }

  /// Racy size estimate (exact when quiescent); never counts the lock bit.
  std::size_t approx_size() const {
    // mo: deliberately racy diagnostics/overflow heuristic; both loads
    // relaxed (see the spill loop in mailbox_core.hpp for why stale reads
    // are benign there).
    const std::uint64_t tail = enqueue_pos_.load(std::memory_order_relaxed);
    const std::uint64_t head =  // mo: same rationale as tail above
        dequeue_pos_.load(std::memory_order_relaxed) & ~kConsumerLock;
    return tail > head ? static_cast<std::size_t>(tail - head) : 0;
  }

  std::size_t capacity() const noexcept { return capacity_; }

  /// Exact heap footprint of the cell array (resource-ledger accounting;
  /// kept dependency-free so the model checker can instantiate the ring).
  std::size_t memory_bytes() const noexcept {
    return capacity_ * sizeof(Cell);
  }

 private:
  static constexpr std::uint64_t kConsumerLock = std::uint64_t{1} << 63;

  struct alignas(64) Cell {
    typename Policy::template Atomic<std::uint64_t> seq{0};
    typename Policy::template Atomic<std::uint64_t> envelope{0};
    typename Policy::template Plain<Message> msg;
  };

  const std::size_t capacity_;
  const std::uint64_t mask_;
  std::unique_ptr<Cell[]> cells_;
  alignas(64) typename Policy::template Atomic<std::uint64_t> enqueue_pos_{0};
  alignas(64) typename Policy::template Atomic<std::uint64_t> dequeue_pos_{0};
};

/// The production instantiation used by the mailbox fast path.
using MpmcMessageRing = BasicMpmcMessageRing<StdAtomics>;

}  // namespace reptile::rtm
