#pragma once
// Chaos delivery: randomized message delays for protocol robustness tests.
//
// The in-process runtime delivers messages instantly, which hides timing
// races a real interconnect would expose (a reply arriving long after the
// requester started waiting, requests landing while a server is busy,
// termination racing late deliveries). ChaosDelayer interposes on
// point-to-point delivery and holds each message for a random delay before
// pushing it to the destination mailbox.
//
// MPI's non-overtaking guarantee is preserved: messages to the SAME
// destination are released in submission order (a message's release time is
// clamped to be no earlier than its queue predecessor's); messages to
// different destinations may interleave arbitrarily, as on a real network.

#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <thread>
#include <vector>

#include "rtm/mailbox.hpp"
#include "seq/rng.hpp"

namespace reptile::rtm {

class World;

class ChaosDelayer {
 public:
  /// Delays are uniform in [0, max_delay_us]. The delayer starts its
  /// delivery thread immediately; the destructor drains every queued
  /// message (delivering instantly) before joining.
  ChaosDelayer(World& world, std::uint64_t seed, int max_delay_us);
  ~ChaosDelayer();

  ChaosDelayer(const ChaosDelayer&) = delete;
  ChaosDelayer& operator=(const ChaosDelayer&) = delete;

  /// Takes ownership of `m` and delivers it to `dst` after a random delay.
  void submit(int dst, Message m);

  /// Messages delayed so far (diagnostics).
  std::uint64_t delivered() const {
    std::lock_guard lock(mutex_);
    return delivered_;
  }

  /// True when no submitted message is still waiting for delivery. The
  /// rtm-check watchdog treats a non-idle delayer as progress in flight.
  bool idle() const {
    std::lock_guard lock(mutex_);
    for (const auto& queue : queues_) {
      if (!queue.empty()) return false;
    }
    return true;
  }

 private:
  using clock = std::chrono::steady_clock;
  struct Item {
    clock::time_point release;
    Message message;
  };

  void run();
  /// Pushes every due (or, when draining, every queued) message; returns
  /// whether any queue is still non-empty. Caller holds the lock.
  bool deliver_due_locked(bool drain);

  World* world_;
  const int max_delay_us_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  seq::Rng rng_;
  std::vector<std::deque<Item>> queues_;  ///< per destination, FIFO
  std::vector<clock::time_point> last_release_;
  std::uint64_t delivered_ = 0;
  bool stop_ = false;
  std::thread thread_;
};

}  // namespace reptile::rtm
