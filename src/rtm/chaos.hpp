#pragma once
// Chaos delivery: seeded fault injection for protocol robustness tests.
//
// The in-process runtime delivers messages instantly, which hides timing
// races a real interconnect would expose (a reply arriving long after the
// requester started waiting, requests landing while a server is busy,
// termination racing late deliveries). ChaosDelayer interposes on
// point-to-point delivery and, per message, can
//
//   * delay it by a random amount (uniform in [0, max_delay_us]),
//   * drop it entirely,
//   * duplicate it (the copy queued right behind the original),
//   * truncate its payload to a random prefix, or
//   * open a per-destination stall window during which nothing at all is
//     delivered to that rank (a "stalled peer").
//
// All decisions come from one seeded RNG, so a failing run replays exactly.
// MPI's non-overtaking guarantee is preserved for the messages that survive:
// messages to the SAME destination are released in submission order (a
// message's release time is clamped to be no earlier than its queue
// predecessor's); messages to different destinations may interleave
// arbitrarily, as on a real network.
//
// Lossy faults (drop/truncate) require the lookup protocol's timeout/retry
// machinery (parallel::RetryPolicy) on the requester side; delay-only plans
// are safe with the plain blocking protocol.

#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include "rtm/mailbox.hpp"
#include "seq/rng.hpp"

namespace reptile::rtm {

class World;

/// Everything the fault injector may do to traffic, in one value type so it
/// can ride through RunOptions and the run config file. seed == 0 disables
/// chaos entirely (instant, lossless delivery).
struct FaultPlan {
  std::uint64_t seed = 0;    ///< 0 = chaos off
  int max_delay_us = 300;    ///< per-message delay, uniform in [0, this]
  double drop_rate = 0.0;      ///< P(message silently discarded)
  double duplicate_rate = 0.0; ///< P(message delivered twice)
  double truncate_rate = 0.0;  ///< P(payload cut to a random prefix)
  double stall_rate = 0.0;     ///< P(a send opens a stall window on its dst)
  int stall_us = 0;            ///< stall window length; 0 disables stalls

  /// Chaos is armed at all (any seed set)?
  bool active() const noexcept { return seed != 0; }

  /// Can this plan lose information (message or payload bytes)? Lossy plans
  /// need requester-side timeouts or the run can hang forever.
  bool lossy() const noexcept { return drop_rate > 0.0 || truncate_rate > 0.0; }

  /// Throws std::invalid_argument on out-of-range rates.
  void validate() const {
    auto rate_ok = [](double r) { return r >= 0.0 && r <= 1.0; };
    if (!rate_ok(drop_rate) || !rate_ok(duplicate_rate) ||
        !rate_ok(truncate_rate) || !rate_ok(stall_rate)) {
      throw std::invalid_argument("chaos fault rates must be in [0, 1]");
    }
    if (max_delay_us < 0) {
      throw std::invalid_argument("chaos_max_delay_us must be >= 0");
    }
    if (stall_us < 0) {
      throw std::invalid_argument("chaos_stall_us must be >= 0");
    }
  }
};

/// What the injector actually did (all-destination totals).
struct ChaosStats {
  std::uint64_t delivered = 0;      ///< messages pushed to a mailbox
  std::uint64_t dropped = 0;        ///< messages discarded
  std::uint64_t duplicated = 0;     ///< extra copies queued
  std::uint64_t truncated = 0;      ///< payloads shortened
  std::uint64_t stalls_opened = 0;  ///< stall windows opened
};

class ChaosDelayer {
 public:
  /// The delayer starts its delivery thread immediately; the destructor
  /// drains every still-queued message (delivering instantly, ignoring
  /// stall windows) before joining, so shutdown never loses a message the
  /// plan didn't explicitly drop.
  ChaosDelayer(World& world, const FaultPlan& plan);
  ~ChaosDelayer();

  ChaosDelayer(const ChaosDelayer&) = delete;
  ChaosDelayer& operator=(const ChaosDelayer&) = delete;

  /// Takes ownership of `m`, applies the fault plan, and (unless dropped)
  /// delivers it to `dst` after its computed release time.
  void submit(int dst, Message m);

  /// Messages delivered (pushed to a mailbox) so far. Duplicates count
  /// twice; drops not at all.
  std::uint64_t delivered() const {
    std::lock_guard lock(mutex_);
    return stats_.delivered;
  }

  /// Snapshot of everything the injector did so far.
  ChaosStats stats() const {
    std::lock_guard lock(mutex_);
    return stats_;
  }

  const FaultPlan& plan() const noexcept { return plan_; }

  /// True when no submitted message is still waiting for delivery. The
  /// rtm-check watchdog treats a non-idle delayer as progress in flight
  /// (this includes messages held behind a stall window).
  bool idle() const {
    std::lock_guard lock(mutex_);
    for (const auto& queue : queues_) {
      if (!queue.empty()) return false;
    }
    return true;
  }

 private:
  using clock = std::chrono::steady_clock;
  struct Item {
    clock::time_point release;
    Message message;
  };

  void run();
  /// Appends to dst's queue with a randomized release time, clamped to the
  /// per-destination floor so FIFO order survives. Caller holds the lock.
  void enqueue_locked(int dst, Message m);
  /// Pushes every due (or, when draining, every queued) message; returns
  /// whether any queue is still non-empty. Draining ignores both release
  /// times and stall windows — the shutdown guarantee. Caller holds the
  /// lock.
  bool deliver_due_locked(bool drain);

  World* world_;
  const FaultPlan plan_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  seq::Rng rng_;
  std::vector<std::deque<Item>> queues_;  ///< per destination, FIFO
  std::vector<clock::time_point> last_release_;
  std::vector<clock::time_point> stall_until_;  ///< per destination
  ChaosStats stats_;
  bool stop_ = false;
  std::thread thread_;
};

}  // namespace reptile::rtm
