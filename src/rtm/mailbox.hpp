#pragma once
// Per-rank mailbox: a thread-safe queue with MPI-style selective matching.
//
// Multiple sender threads push; the owning rank's worker thread and
// communication thread pop concurrently with different (source, tag)
// filters — the worker pops replies, the communication thread pops lookup
// requests — so matching must be selective and thread-safe. Messages from
// the same (source, tag) pair are delivered in FIFO order, the MPI
// non-overtaking guarantee the protocols rely on.

#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>

#include "rtm/message.hpp"

namespace reptile::rtm {

class Mailbox {
 public:
  /// Enqueues a message (called by sender threads).
  void push(Message m) {
    {
      std::lock_guard lock(mutex_);
      queue_.push_back(std::move(m));
    }
    cv_.notify_all();
  }

  /// Removes and returns the first message matching (source, tag), or
  /// std::nullopt when none is queued. Wildcards kAnySource / kAnyTag match
  /// anything.
  std::optional<Message> try_pop(int source, int tag) {
    std::lock_guard lock(mutex_);
    return pop_locked(source, tag);
  }

  /// Blocking matched receive.
  Message pop(int source, int tag) {
    std::unique_lock lock(mutex_);
    while (true) {
      if (auto m = pop_locked(source, tag)) return std::move(*m);
      cv_.wait(lock);
    }
  }

  /// Removes and returns the first message satisfying `pred`, waiting up to
  /// `timeout` for one to arrive. Used by communication threads, which must
  /// match several request tags at once while never stealing reply messages
  /// destined for the worker thread.
  template <class Pred, class Rep, class Period>
  std::optional<Message> pop_match_for(
      Pred&& pred, std::chrono::duration<Rep, Period> timeout) {
    std::unique_lock lock(mutex_);
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    while (true) {
      for (auto it = queue_.begin(); it != queue_.end(); ++it) {
        if (pred(*it)) {
          Message m = std::move(*it);
          queue_.erase(it);
          return m;
        }
      }
      if (cv_.wait_until(lock, deadline) == std::cv_status::timeout) {
        // One last scan in case a push raced the timeout.
        for (auto it = queue_.begin(); it != queue_.end(); ++it) {
          if (pred(*it)) {
            Message m = std::move(*it);
            queue_.erase(it);
            return m;
          }
        }
        return std::nullopt;
      }
    }
  }

  /// Non-blocking probe: envelope of the first matching message without
  /// removing it (MPI_Iprobe).
  std::optional<MessageInfo> probe(int source, int tag) const {
    std::lock_guard lock(mutex_);
    for (const Message& m : queue_) {
      if (matches(m, source, tag)) return m.info();
    }
    return std::nullopt;
  }

  bool empty() const {
    std::lock_guard lock(mutex_);
    return queue_.empty();
  }

  std::size_t size() const {
    std::lock_guard lock(mutex_);
    return queue_.size();
  }

 private:
  static bool matches(const Message& m, int source, int tag) noexcept {
    return (source == kAnySource || m.source == source) &&
           (tag == kAnyTag || m.tag == tag);
  }

  std::optional<Message> pop_locked(int source, int tag) {
    for (auto it = queue_.begin(); it != queue_.end(); ++it) {
      if (matches(*it, source, tag)) {
        Message m = std::move(*it);
        queue_.erase(it);
        return m;
      }
    }
    return std::nullopt;
  }

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<Message> queue_;
};

}  // namespace reptile::rtm
