#pragma once
// Per-rank mailbox: a thread-safe queue with MPI-style selective matching.
//
// Multiple sender threads push; the owning rank's worker thread and
// communication thread pop concurrently with different (source, tag)
// filters — the worker pops replies, the communication thread pops lookup
// requests — so matching must be selective and thread-safe. Messages from
// the same (source, tag) pair are delivered in FIFO order, the MPI
// non-overtaking guarantee the protocols rely on (and that the rtm-check
// mailbox audit verifies at runtime, see rtm/check/check.hpp).

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "rtm/check/check.hpp"
#include "rtm/message.hpp"

namespace reptile::rtm {

class Mailbox {
 public:
  /// Installs (or, with nullptr, removes) the run checker's hooks. Called
  /// by World::enable_check before rank threads start; the checker detaches
  /// itself again on destruction.
  void set_check(check::RunChecker* check, int owner_rank) {
    std::lock_guard lock(mutex_);
    check_ = check;
    owner_ = owner_rank;
  }

  /// Enqueues a message (called by sender threads).
  void push(Message m) {
    {
      std::lock_guard lock(mutex_);
      if (check_ != nullptr) check_->on_push(owner_, m);
      queue_.push_back(std::move(m));
    }
    // Deliberately outside the critical section: notifying under the mutex
    // would wake receivers straight into a lock they cannot take (one
    // futile context switch per push). Safe because a Mailbox always
    // outlives its senders — World joins every rank thread before the
    // mailboxes die. Contrast Barrier::arrive_and_wait, whose notify must
    // stay inside (see world.hpp).
    cv_.notify_all();
  }

  /// Removes and returns the first message matching (source, tag), or
  /// std::nullopt when none is queued. Wildcards kAnySource / kAnyTag match
  /// anything.
  std::optional<Message> try_pop(int source, int tag) {
    std::lock_guard lock(mutex_);
    return pop_locked(source, tag);
  }

  /// Blocking matched receive. When rtm-check is attached, the wait is
  /// registered with the deadlock detector and polls the abort flag, so a
  /// diagnosed deadlock throws check::DeadlockError here instead of
  /// hanging forever.
  Message pop(int source, int tag) {
    std::unique_lock lock(mutex_);
    if (auto m = pop_locked(source, tag)) return std::move(*m);
    // Only receives that actually block are recorded: the fast path above
    // stays untouched, and the trace shows genuine waits, not every pop.
    // Destroyed on every exit path below, including the deadlock-abort
    // throw — an aborted wait still leaves its span in the flight recorder.
    const BlockedWait wait{owner_};
    if (check_ == nullptr) {
      while (true) {
        cv_.wait(lock);
        if (auto m = pop_locked(source, tag)) return std::move(*m);
      }
    }
    check::RunChecker* check = check_;
    if (check->aborted()) check->throw_abort();
    const std::uint64_t ticket =
        check->begin_recv_wait(owner_, source, tag, this);
    while (true) {
      cv_.wait_for(lock, check->poll_interval());
      if (auto m = pop_locked(source, tag)) {
        check->end_recv_wait(ticket);
        return std::move(*m);
      }
      if (check->aborted()) {
        check->end_recv_wait(ticket);
        check->throw_abort();
      }
    }
  }

  /// Removes and returns the first message satisfying `pred`, waiting up to
  /// `timeout` for one to arrive. Used by communication threads, which must
  /// match several request tags at once while never stealing reply messages
  /// destined for the worker thread. Returns early (empty) once rtm-check
  /// aborts the run.
  template <class Pred, class Rep, class Period>
  std::optional<Message> pop_match_for(
      Pred&& pred, std::chrono::duration<Rep, Period> timeout) {
    std::unique_lock lock(mutex_);
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    while (true) {
      for (auto it = queue_.begin(); it != queue_.end(); ++it) {
        if (pred(*it)) return take_locked(it);
      }
      const auto now = std::chrono::steady_clock::now();
      if (now >= deadline) return std::nullopt;
      if (check_ != nullptr && check_->aborted()) return std::nullopt;
      auto wake = deadline;
      if (check_ != nullptr) {
        const auto slice = now + check_->poll_interval();
        if (slice < wake) wake = slice;
      }
      cv_.wait_until(lock, wake);
    }
  }

  /// Non-blocking probe: envelope of the first matching message without
  /// removing it (MPI_Iprobe).
  std::optional<MessageInfo> probe(int source, int tag) const {
    std::lock_guard lock(mutex_);
    for (const Message& m : queue_) {
      if (matches(m, source, tag)) return m.info();
    }
    return std::nullopt;
  }

  /// Envelope snapshot of every queued message, in queue order (rtm-check
  /// leak audit and deadlock state dumps).
  std::vector<MessageInfo> pending_info() const {
    std::lock_guard lock(mutex_);
    std::vector<MessageInfo> out;
    out.reserve(queue_.size());
    for (const Message& m : queue_) out.push_back(m.info());
    return out;
  }

  /// Visits every queued message under the lock, in queue order. Used by
  /// the rtm-check finalize pass, which must parse leaked payloads (to read
  /// protocol sequence numbers) — pending_info() only exposes envelopes.
  /// `fn` must not touch the mailbox.
  template <class Fn>
  void for_each_pending(Fn&& fn) const {
    std::lock_guard lock(mutex_);
    for (const Message& m : queue_) fn(m);
  }

  bool empty() const {
    std::lock_guard lock(mutex_);
    return queue_.empty();
  }

  std::size_t size() const {
    std::lock_guard lock(mutex_);
    return queue_.size();
  }

 private:
  /// RAII instrumentation for one blocked receive: a mailbox:wait span in
  /// the trace plus a sample in the owner rank's wait histogram. Runs with
  /// the mailbox mutex held; the tracer/registry are leaf locks.
  struct BlockedWait {
    explicit BlockedWait(int rank)
        : rank_(rank), start_(obs::Tracer::instance().now_ns()) {}
    BlockedWait(const BlockedWait&) = delete;
    BlockedWait& operator=(const BlockedWait&) = delete;
    ~BlockedWait() {
      obs::Tracer& tracer = obs::Tracer::instance();
      const std::int64_t waited_ns = tracer.now_ns() - start_;
      tracer.complete("mailbox", "mailbox:wait", start_);
      if (obs::Histogram* h = obs::Registry::global().histogram(
              "reptile_mailbox_wait_us", rank_)) {
        h->record(static_cast<std::uint64_t>(waited_ns < 0 ? 0 : waited_ns) /
                  1000);
      }
    }
    int rank_;
    std::int64_t start_;
  };

  static bool matches(const Message& m, int source, int tag) noexcept {
    return (source == kAnySource || m.source == source) &&
           (tag == kAnyTag || m.tag == tag);
  }

  Message take_locked(std::deque<Message>::iterator it) {
    Message m = std::move(*it);
    queue_.erase(it);
    if (check_ != nullptr) check_->on_pop(owner_, m);
    return m;
  }

  std::optional<Message> pop_locked(int source, int tag) {
    for (auto it = queue_.begin(); it != queue_.end(); ++it) {
      if (matches(*it, source, tag)) return take_locked(it);
    }
    return std::nullopt;
  }

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<Message> queue_;
  check::RunChecker* check_ = nullptr;
  int owner_ = -1;
};

}  // namespace reptile::rtm
