#pragma once
// Per-rank mailbox: a thread-safe queue with MPI-style selective matching.
//
// Multiple sender threads push; the owning rank's worker thread and
// communication thread pop concurrently with different (source, tag)
// filters — the worker pops replies, the communication thread pops lookup
// requests — so matching must be selective and thread-safe. Messages from
// the same (source, tag) pair are delivered in FIFO order, the MPI
// non-overtaking guarantee the protocols rely on (and that the rtm-check
// mailbox audit verifies at runtime, see rtm/check/check.hpp).
//
// Two delivery paths (DESIGN.md §7):
//
// - FAST: a bounded lock-free MPMC ring (rtm/ring.hpp). Pushes and
//   exact-(source, tag) pops of the ring head complete without touching
//   the mutex. Only enabled while no run checker is attached — rtm-check
//   hooks must observe pushes/pops under the mutex to stamp and audit
//   per-stream sequence numbers.
// - SLOW: the classic mutex/condvar deque. Wildcard matching, predicate
//   receives (pop_match_for), probes, pending-state dumps, blocked waits,
//   and ring overflow all take this path.
//
// The path mechanics — ring, overflow deque, consumer-lock discipline,
// the waiter-count Dekker handshake against lost wakeups — live in
// rtm/mailbox_core.hpp (BasicMailboxCore / WaiterGate), templated on an
// atomics policy so the model checker (rtm/model/, DESIGN.md §8) can
// explore their interleavings. This class binds them to the production
// policy and adds the mutex, condvar, waiter registry, rtm-check hooks,
// obs instrumentation and stats.
//
// Wakeups are targeted: blocked receivers register their (source, tag)
// filter (wildcards for predicate receives) and push only notifies when
// some registered filter matches the pushed envelope.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "obs/ledger.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "rtm/check/check.hpp"
#include "rtm/mailbox_core.hpp"
#include "rtm/message.hpp"
#include "rtm/ring.hpp"
#include "rtm/stat_counter.hpp"

namespace reptile::rtm {

namespace detail {
inline void cpu_pause() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield");
#else
  std::this_thread::yield();
#endif
}
}  // namespace detail

/// Plain-value snapshot of one mailbox's path counters (bench/diagnostics;
/// mirrored into the obs registry after a run, see rtm/comm.cpp).
struct MailboxStats {
  std::uint64_t fast_pushes = 0;   ///< pushes completed on the lock-free ring
  std::uint64_t slow_pushes = 0;   ///< pushes that took the mutex path
  std::uint64_t fast_pops = 0;     ///< exact-match pops served by the ring head
  std::uint64_t futile_wakeups = 0;    ///< notified waiter found nothing
  std::uint64_t notifies_skipped = 0;  ///< pushes that had no matching waiter
};

class Mailbox {
 public:
  /// Fast-path ring capacity in messages; overflow spills to the deque.
  static constexpr std::size_t kRingCapacity = 256;
  /// Exact-match blocking pops spin on the ring this many times before
  /// parking on the condvar (an empty ring can fill any moment; a mismatch
  /// or locked ring cannot resolve without the mutex, so those bail out
  /// immediately). The first kPopPauses iterations busy-wait with a CPU
  /// pause — they catch messages published by a producer running
  /// SIMULTANEOUSLY on another core. The remaining iterations yield the
  /// thread instead: when ranks share cores (including the 1-CPU CI box),
  /// the producer can only publish after the scheduler runs it, so ceding
  /// the core IS the fastest way to make the message arrive — a yielding
  /// request/reply pair round-trips entirely on the ring, with the futex
  /// sleep/wake and the notify mutex never touched (push sees no
  /// registered waiter and skips the notify). Pure pause-spinning here
  /// would be actively harmful: it burns the whole timeslice the producer
  /// needs, degenerating every receive into a full spin window PLUS the
  /// park it was meant to avoid.
  static constexpr int kPopSpins = 32;
  static constexpr int kPopPauses = 4;

  using Core = BasicMailboxCore<StdAtomics>;
  using PopResult = Core::PopResult;

  Mailbox() { ring_charge_.set(core_.ring().memory_bytes()); }

  /// Identifies the owning rank for obs instruments (wait histograms).
  /// Called by World's constructor before rank threads start.
  void set_owner(int rank) { owner_ = rank; }

  /// Installs (or, with nullptr, removes) the run checker's hooks. Called
  /// by World::enable_check before rank threads start; the checker detaches
  /// itself again on destruction. Atomic because the chaos delivery thread
  /// can still push while ~RunChecker detaches during World teardown.
  void set_check(check::RunChecker* check, int owner_rank) {
    std::lock_guard lock(mutex_);
    // mo: release pairs with the acquire in push/try_pop/pop — a sender
    // that sees the checker also sees it fully constructed.
    check_.store(check, std::memory_order_release);
    owner_ = owner_rank;
  }

  /// Disables (or re-enables) the lock-free ring, forcing every operation
  /// onto the mutex path — the A/B baseline for benchmarks and the chaos
  /// path-identity tests. Call while no other thread uses the mailbox.
  void set_fast_path(bool enabled) {
    std::lock_guard lock(mutex_);
    if (!enabled) {
      // Flush fast-path messages into the deque so they stay visible.
      const SlowSection slow(*this);
    }
    // mo: relaxed — only toggled while the mailbox is otherwise idle.
    fast_path_.store(enabled, std::memory_order_relaxed);
  }

  /// Enqueues a message (called by sender threads). Lock-free unless a
  /// checker is attached, the fast path is disabled, or the ring is full.
  void push(Message m) {
    const int source = m.source;
    const int tag = m.tag;
    // mo: acquire on check_ (see set_check); relaxed on fast_path_ (quiesced
    // toggle).
    if (check_.load(std::memory_order_acquire) == nullptr &&
        fast_path_.load(std::memory_order_relaxed) && core_.try_push_fast(m)) {
      // mo: relaxed stat counter.
      fast_pushes_.fetch_add(1, std::memory_order_relaxed);
      // Dekker handshake with WaiterScope (see WaiterGate in
      // rtm/mailbox_core.hpp): one side always observes the other, so a
      // receiver can never park after missing a message that skipped its
      // notify (memory-ordering argument in DESIGN.md §7).
      if (waiter_gate_.publisher_sees_waiter()) {
        notify_matching(source, tag);
      } else {
        // mo: relaxed stat counter.
        notifies_skipped_.fetch_add(1, std::memory_order_relaxed);
      }
      return;
    }
    push_slow(std::move(m), source, tag);
  }

  /// Removes and returns the first message matching (source, tag), or
  /// std::nullopt when none is queued. Wildcards kAnySource / kAnyTag match
  /// anything (and always take the slow path).
  std::optional<Message> try_pop(int source, int tag) {
    // mo: acquire on check_ (see set_check); relaxed on fast_path_.
    if (source != kAnySource && tag != kAnyTag &&
        check_.load(std::memory_order_acquire) == nullptr &&
        fast_path_.load(std::memory_order_relaxed)) {
      Message out;
      switch (core_.try_pop_fast(pack_envelope(source, tag), out)) {
        case PopResult::kOk:
          // mo: relaxed stat counter.
          fast_pops_.fetch_add(1, std::memory_order_relaxed);
          return out;
        case PopResult::kEmpty:
          // Consumer-lock bit was clear, which implies the deque is empty
          // too — there is nothing to receive anywhere.
          return std::nullopt;
        case PopResult::kMismatch:
        case PopResult::kLocked:
          break;  // an older/other message may match under the mutex
      }
    }
    std::lock_guard lock(mutex_);
    const SlowSection slow(*this);
    return pop_locked(source, tag);
  }

  /// Blocking matched receive. When rtm-check is attached, the wait is
  /// registered with the deadlock detector and polls the abort flag, so a
  /// diagnosed deadlock throws check::DeadlockError here instead of
  /// hanging forever.
  Message pop(int source, int tag) {
    // mo: acquire on check_ (see set_check); relaxed on fast_path_.
    if (source != kAnySource && tag != kAnyTag &&
        check_.load(std::memory_order_acquire) == nullptr &&
        fast_path_.load(std::memory_order_relaxed)) {
      const std::uint64_t env = pack_envelope(source, tag);
      Message out;
      for (int spin = 0; spin < kPopSpins; ++spin) {
        const auto r = core_.try_pop_fast(env, out);
        if (r == PopResult::kOk) {
          // mo: relaxed stat counter.
          fast_pops_.fetch_add(1, std::memory_order_relaxed);
          return out;
        }
        if (r != PopResult::kEmpty) break;
        if (spin < kPopPauses) {
          detail::cpu_pause();
        } else {
          std::this_thread::yield();
        }
      }
    }
    return pop_slow_blocking(source, tag);
  }

  /// Removes and returns the first message satisfying `pred`, waiting up to
  /// `timeout` for one to arrive. Used by communication threads, which must
  /// match several request tags at once while never stealing reply messages
  /// destined for the worker thread. Returns early (empty) once rtm-check
  /// aborts the run. The predicate must be stateless: across wakeups only
  /// newly arrived messages are re-examined (a message that failed the
  /// predicate once can never match later), so scans resume where the last
  /// one stopped instead of rescanning the whole deque.
  template <class Pred, class Rep, class Period>
  std::optional<Message> pop_match_for(
      Pred&& pred, std::chrono::duration<Rep, Period> timeout) {
    std::unique_lock lock(mutex_);
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    SlowSection slow(*this);
    // The predicate is opaque, so the registered filter is a wildcard.
    Waiter waiter{kAnySource, kAnyTag};
    const WaiterScope scope(*this, &waiter);
    std::uint64_t scan_from = 0;  // stamps below this are already examined
    bool notified = false;
    while (true) {
      auto& queue = core_.queue();
      auto it = queue.begin();
      if (scan_from != 0) {
        // Deque stamps are ascending (assigned on deque entry), so the
        // resume point is a binary search away.
        it = std::lower_bound(
            queue.begin(), queue.end(), scan_from,
            [](const Core::Entry& q, std::uint64_t s) { return q.stamp < s; });
      }
      for (; it != queue.end(); ++it) {
        if (pred(it->msg)) return take_locked(it);
      }
      scan_from = core_.next_stamp();
      if (notified) {
        // mo: relaxed stat counter.
        futile_wakeups_.fetch_add(1, std::memory_order_relaxed);
        notified = false;
      }
      const auto now = std::chrono::steady_clock::now();
      if (now >= deadline) return std::nullopt;
      // mo: relaxed re-read; the acquire at entry ordered construction.
      check::RunChecker* check = check_.load(std::memory_order_relaxed);
      if (check != nullptr && check->aborted()) return std::nullopt;
      auto wake = deadline;
      if (check != nullptr) {
        const auto slice = now + check->poll_interval();
        if (slice < wake) wake = slice;
      }
      slow.pause();
      const auto status = cv_.wait_until(lock, wake);
      slow.resume();
      notified = status == std::cv_status::no_timeout;
    }
  }

  /// Non-blocking probe: envelope of the first matching message without
  /// removing it (MPI_Iprobe).
  std::optional<MessageInfo> probe(int source, int tag) const {
    std::lock_guard lock(mutex_);
    const SlowSection slow(*this);
    for (const Core::Entry& q : core_.queue()) {
      if (matches(q.msg, source, tag)) return q.msg.info();
    }
    return std::nullopt;
  }

  /// Envelope snapshot of every queued message, in queue order (rtm-check
  /// leak audit and deadlock state dumps).
  std::vector<MessageInfo> pending_info() const {
    std::lock_guard lock(mutex_);
    const SlowSection slow(*this);
    std::vector<MessageInfo> out;
    out.reserve(core_.queue().size());
    for (const Core::Entry& q : core_.queue()) out.push_back(q.msg.info());
    return out;
  }

  /// Visits every queued message under the lock, in queue order. Used by
  /// the rtm-check finalize pass, which must parse leaked payloads (to read
  /// protocol sequence numbers) — pending_info() only exposes envelopes.
  /// `fn` must not touch the mailbox.
  template <class Fn>
  void for_each_pending(Fn&& fn) const {
    std::lock_guard lock(mutex_);
    const SlowSection slow(*this);
    for (const Core::Entry& q : core_.queue()) fn(q.msg);
  }

  bool empty() const { return size() == 0; }

  std::size_t size() const {
    std::lock_guard lock(mutex_);
    return core_.queue().size() + core_.ring_size();
  }

  MailboxStats stats() const {
    MailboxStats s;
    s.fast_pushes = stat_read(fast_pushes_);
    s.slow_pushes = stat_read(slow_pushes_);
    s.fast_pops = stat_read(fast_pops_);
    s.futile_wakeups = stat_read(futile_wakeups_);
    s.notifies_skipped = stat_read(notifies_skipped_);
    return s;
  }

 private:
  /// A blocked receiver's filter, registered while it waits so push can
  /// decide whether anyone cares about a new envelope.
  struct Waiter {
    int source;
    int tag;
  };

  /// RAII instrumentation for one blocked receive: a mailbox:wait span in
  /// the trace plus a sample in the owner rank's wait histogram. Runs with
  /// the mailbox mutex held; the tracer/registry are leaf locks.
  struct BlockedWait {
    explicit BlockedWait(int rank)
        : rank_(rank), start_(obs::Tracer::instance().now_ns()) {}
    BlockedWait(const BlockedWait&) = delete;
    BlockedWait& operator=(const BlockedWait&) = delete;
    ~BlockedWait() {
      obs::Tracer& tracer = obs::Tracer::instance();
      const std::int64_t waited_ns = tracer.now_ns() - start_;
      tracer.complete("mailbox", "mailbox:wait", start_);
      if (obs::Histogram* h = obs::Registry::global().histogram(
              "reptile_mailbox_wait_us", rank_)) {
        h->record(static_cast<std::uint64_t>(waited_ns < 0 ? 0 : waited_ns) /
                  1000);
      }
    }
    int rank_;
    std::int64_t start_;
  };

  /// RAII for a locked consumer section: sets the ring's consumer-lock bit
  /// and drains the ring into the deque, so the deque shows every delivered
  /// message and fast pops cannot race the scan. On exit the bit is cleared
  /// iff the deque is empty (the bit's steady-state meaning: "an older
  /// message is parked outside the ring"). pause()/resume() bracket condvar
  /// waits so fast pops keep flowing while this thread sleeps.
  class SlowSection {
   public:
    explicit SlowSection(const Mailbox& mb) : mb_(mb) {
      mb_.core_.slow_begin_locked();
    }
    SlowSection(const SlowSection&) = delete;
    SlowSection& operator=(const SlowSection&) = delete;
    ~SlowSection() { mb_.core_.slow_end_locked(); }
    void pause() { mb_.core_.slow_end_locked(); }
    void resume() { mb_.core_.slow_begin_locked(); }

   private:
    const Mailbox& mb_;
  };

  /// RAII registration of a blocked receiver's filter. Construction issues
  /// the fence (WaiterGate::enter) that pairs with the publisher's
  /// handshake in push(): after it, either the rescan sees every lock-free
  /// publication, or the publisher sees the incremented waiter count and
  /// notifies.
  class WaiterScope {
   public:
    WaiterScope(Mailbox& mb, Waiter* w) : mb_(mb), w_(w) {
      mb_.waiters_.push_back(w_);
      mb_.waiter_gate_.enter();
    }
    WaiterScope(const WaiterScope&) = delete;
    WaiterScope& operator=(const WaiterScope&) = delete;
    ~WaiterScope() {
      mb_.waiters_.erase(
          std::find(mb_.waiters_.begin(), mb_.waiters_.end(), w_));
      mb_.waiter_gate_.exit();
    }

   private:
    Mailbox& mb_;
    Waiter* w_;
  };

  static bool matches(const Message& m, int source, int tag) noexcept {
    return (source == kAnySource || m.source == source) &&
           (tag == kAnyTag || m.tag == tag);
  }

  void push_slow(Message m, int source, int tag) {
    bool matched = false;
    {
      std::lock_guard lock(mutex_);
      // mo: relaxed re-read; the caller's acquire ordered construction.
      check::RunChecker* check = check_.load(std::memory_order_relaxed);
      if (check != nullptr) check->on_push(owner_, m);
      // mo: relaxed stat counter.
      slow_pushes_.fetch_add(1, std::memory_order_relaxed);
      // mo: relaxed fast_path_ (quiesced toggle).
      core_.push_locked(std::move(m),
                        fast_path_.load(std::memory_order_relaxed));
      matched = waiter_gate_.any_waiter_hint() &&
                any_waiter_matches_locked(source, tag);
    }
    // Deliberately outside the critical section: notifying under the mutex
    // would wake receivers straight into a lock they cannot take (one
    // futile context switch per push). Safe because a Mailbox always
    // outlives its senders — World joins every rank thread before the
    // mailboxes die. Contrast Barrier::arrive_and_wait, whose notify must
    // stay inside (see world.hpp).
    if (matched) {
      cv_.notify_all();
    } else {
      // mo: relaxed stat counter.
      notifies_skipped_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  Message pop_slow_blocking(int source, int tag) {
    std::unique_lock lock(mutex_);
    SlowSection slow(*this);
    if (auto m = pop_locked(source, tag)) return std::move(*m);
    // Only receives that actually block are recorded: the scan above
    // stays untouched, and the trace shows genuine waits, not every pop.
    // Destroyed on every exit path below, including the deadlock-abort
    // throw — an aborted wait still leaves its span in the flight recorder.
    const BlockedWait wait{owner_};
    Waiter waiter{source, tag};
    const WaiterScope scope(*this, &waiter);
    // Rescan after publishing the registration: this is the receiving half
    // of the Dekker handshake with push() and closes the window where a
    // lock-free publication saw no waiters.
    core_.drain_ring_locked();
    if (auto m = pop_locked(source, tag)) return std::move(*m);
    // mo: relaxed re-read; the caller's acquire ordered construction.
    check::RunChecker* check = check_.load(std::memory_order_relaxed);
    if (check == nullptr) {
      while (true) {
        slow.pause();
        cv_.wait(lock);
        slow.resume();
        if (auto m = pop_locked(source, tag)) return std::move(*m);
        // mo: relaxed stat counter.
        futile_wakeups_.fetch_add(1, std::memory_order_relaxed);
      }
    }
    if (check->aborted()) check->throw_abort();
    const std::uint64_t ticket =
        check->begin_recv_wait(owner_, source, tag, this);
    while (true) {
      slow.pause();
      const auto status = cv_.wait_for(lock, check->poll_interval());
      slow.resume();
      if (auto m = pop_locked(source, tag)) {
        check->end_recv_wait(ticket);
        return std::move(*m);
      }
      if (status == std::cv_status::no_timeout) {
        // mo: relaxed stat counter.
        futile_wakeups_.fetch_add(1, std::memory_order_relaxed);
      }
      if (check->aborted()) {
        check->end_recv_wait(ticket);
        check->throw_abort();
      }
    }
  }

  bool any_waiter_matches_locked(int source, int tag) const {
    for (const Waiter* w : waiters_) {
      if ((w->source == kAnySource || w->source == source) &&
          (w->tag == kAnyTag || w->tag == tag)) {
        return true;
      }
    }
    return false;
  }

  /// Envelope-targeted wakeup from a lock-free push: takes the mutex only
  /// to read the waiter registry (push itself stayed lock-free; a waiter
  /// existing means some receiver is about to sleep anyway).
  void notify_matching(int source, int tag) {
    bool matched = false;
    {
      std::lock_guard lock(mutex_);
      matched = any_waiter_matches_locked(source, tag);
    }
    if (matched) {
      cv_.notify_all();
    } else {
      // mo: relaxed stat counter.
      notifies_skipped_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  Message take_locked(std::deque<Core::Entry>::iterator it) {
    Message m = std::move(it->msg);
    core_.queue().erase(it);
    // mo: relaxed re-read; the caller's acquire ordered construction.
    check::RunChecker* check = check_.load(std::memory_order_relaxed);
    if (check != nullptr) check->on_pop(owner_, m);
    return m;
  }

  std::optional<Message> pop_locked(int source, int tag) {
    auto& queue = core_.queue();
    for (auto it = queue.begin(); it != queue.end(); ++it) {
      if (matches(it->msg, source, tag)) return take_locked(it);
    }
    return std::nullopt;
  }

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  mutable Core core_{kRingCapacity};  // deque/stamps guarded by mutex_
  // The ring's cell array is the mailbox's dominant fixed cost; charged once
  // at construction (the overflow deque is transient and stays uncharged).
  obs::LedgerCharge ring_charge_{obs::LedgerAccount::kMailboxRings};
  std::vector<Waiter*> waiters_;      // guarded by mutex_
  WaiterGate<StdAtomics> waiter_gate_;
  std::atomic<bool> fast_path_{true};
  std::atomic<check::RunChecker*> check_{nullptr};
  int owner_ = -1;

  std::atomic<std::uint64_t> fast_pushes_{0};
  std::atomic<std::uint64_t> slow_pushes_{0};
  std::atomic<std::uint64_t> fast_pops_{0};
  std::atomic<std::uint64_t> futile_wakeups_{0};
  std::atomic<std::uint64_t> notifies_skipped_{0};
};

}  // namespace reptile::rtm
