#include "rtm/comm.hpp"

#include <exception>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>

#include "obs/ledger.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "rtm/thread_group.hpp"

namespace reptile::rtm {

namespace {

/// Mirrors per-rank mailbox path counters and arena gauges into the obs
/// registry once the run is over (no-op while observability is off).
void publish_runtime_metrics(World& world) {
  obs::Registry& reg = obs::Registry::global();
  for (int r = 0; r < world.size(); ++r) {
    const MailboxStats ms = world.mailbox(r).stats();
    if (auto* c = reg.counter("reptile_mailbox_fast_pushes", r)) {
      c->add(ms.fast_pushes);
    }
    if (auto* c = reg.counter("reptile_mailbox_slow_pushes", r)) {
      c->add(ms.slow_pushes);
    }
    if (auto* c = reg.counter("reptile_mailbox_fast_pops", r)) {
      c->add(ms.fast_pops);
    }
    if (auto* c = reg.counter("reptile_mailbox_futile_wakeups", r)) {
      c->add(ms.futile_wakeups);
    }
    if (auto* c = reg.counter("reptile_mailbox_notifies_skipped", r)) {
      c->add(ms.notifies_skipped);
    }
    const PayloadArena::Stats as = world.arena(r).stats();
    if (auto* g = reg.gauge("reptile_arena_slab_bytes", r)) {
      g->set(static_cast<double>(world.arena(r).memory_bytes()));
    }
    if (auto* g = reg.gauge("reptile_arena_slabs_reused", r)) {
      g->set(static_cast<double>(as.slabs_reused));
    }
    if (auto* g = reg.gauge("reptile_arena_oversize_allocs", r)) {
      g->set(static_cast<double>(as.oversize_allocs));
    }
  }
}

}  // namespace

void run_ranks(World& world, const std::function<void(Comm&)>& rank_main) {
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(world.size()));
  std::exception_ptr first_error;
  std::mutex error_mutex;

  for (int r = 0; r < world.size(); ++r) {
    threads.emplace_back([&world, &rank_main, &first_error, &error_mutex, r] {
      try {
        // Register eagerly so the deadlock watchdog knows this rank is
        // live (and "running") from the very start of the run.
        std::optional<check::ThreadScope> scope;
        if (check::RunChecker* check = world.checker()) {
          scope.emplace(*check, r, check::ThreadRole::kMain);
        }
        obs::Tracer::instance().set_thread(r, "main");
        Comm comm(world, r);
        rank_main(comm);
      } catch (...) {
        std::lock_guard lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

std::unique_ptr<World> run_world(Topology topo,
                                 const std::function<void(Comm&)>& rank_main,
                                 const RunOptions& options) {
  auto world = std::make_unique<World>(topo);
  world->set_mailbox_fast_path(options.mailbox_fast_path);
  if (options.check.enabled) world->enable_check(options.check);
  if (options.chaos.active()) world->enable_chaos(options.chaos);
  // Resource-ledger RSS cross-check: one process-wide sampler thread for
  // the run. It registers with the deadlock watchdog and reports itself
  // idle-polling every tick, so it never reads as a hung rank thread.
  obs::RssSampler sampler;
  {
    ScopedThreadGroup sampler_group([&sampler] { sampler.stop(); });
    if (obs::ResourceLedger::global().enabled()) {
      World* w = world.get();
      sampler_group.spawn([&sampler, w] {
        std::optional<check::ThreadScope> scope;
        std::function<void()> idle;
        if (check::RunChecker* check = w->checker()) {
          scope.emplace(*check, 0, check::ThreadRole::kOther);
          idle = [check] { check->thread_idle_poll(); };
        }
        sampler.run(idle);
      });
    }
    run_ranks(*world, rank_main);
  }  // stops and joins the sampler before the checker finalizes
  if (check::RunChecker* check = world->checker()) check->finalize();
  publish_runtime_metrics(*world);
  return world;
}

}  // namespace reptile::rtm
