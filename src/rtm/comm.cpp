#include "rtm/comm.hpp"

#include <exception>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>

#include "obs/trace.hpp"

namespace reptile::rtm {

void run_ranks(World& world, const std::function<void(Comm&)>& rank_main) {
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(world.size()));
  std::exception_ptr first_error;
  std::mutex error_mutex;

  for (int r = 0; r < world.size(); ++r) {
    threads.emplace_back([&world, &rank_main, &first_error, &error_mutex, r] {
      try {
        // Register eagerly so the deadlock watchdog knows this rank is
        // live (and "running") from the very start of the run.
        std::optional<check::ThreadScope> scope;
        if (check::RunChecker* check = world.checker()) {
          scope.emplace(*check, r, check::ThreadRole::kMain);
        }
        obs::Tracer::instance().set_thread(r, "main");
        Comm comm(world, r);
        rank_main(comm);
      } catch (...) {
        std::lock_guard lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

std::unique_ptr<World> run_world(Topology topo,
                                 const std::function<void(Comm&)>& rank_main,
                                 const RunOptions& options) {
  auto world = std::make_unique<World>(topo);
  if (options.check.enabled) world->enable_check(options.check);
  if (options.chaos.active()) world->enable_chaos(options.chaos);
  run_ranks(*world, rank_main);
  if (check::RunChecker* check = world->checker()) check->finalize();
  return world;
}

}  // namespace reptile::rtm
