#pragma once
// Per-rank communication counters.
//
// Everything the performance model needs to price a run is counted here at
// the runtime layer: point-to-point messages/bytes split by intra- vs
// inter-node, and collective participation volume. Counters are per-rank
// and written only by threads of that rank, except message receipt counts
// which use relaxed atomics because sender threads touch the receiver's row.

#include <atomic>
#include <cstdint>
#include <vector>

#include "rtm/topology.hpp"

namespace reptile::rtm {

/// One rank's traffic counters. Atomics with relaxed ordering: counters are
/// only read after a barrier / join, which provides the synchronization.
struct RankTraffic {
  std::atomic<std::uint64_t> sent_msgs_intra{0};
  std::atomic<std::uint64_t> sent_msgs_inter{0};
  std::atomic<std::uint64_t> sent_bytes_intra{0};
  std::atomic<std::uint64_t> sent_bytes_inter{0};
  std::atomic<std::uint64_t> collective_bytes_out{0};
  std::atomic<std::uint64_t> collective_bytes_in{0};
  std::atomic<std::uint64_t> collective_calls{0};
  /// Largest single point-to-point payload sent (vectored lookups make this
  /// grow with batch size; the scalar protocol keeps it at sizeof(request)).
  std::atomic<std::uint64_t> largest_msg_bytes{0};
  /// Fault injection (rtm/chaos.hpp), attributed to the SENDING rank: how
  /// many of this rank's sends the chaos layer discarded or duplicated.
  std::atomic<std::uint64_t> dropped_msgs{0};
  std::atomic<std::uint64_t> duplicated_msgs{0};

  std::uint64_t sent_msgs() const noexcept {
    return sent_msgs_intra.load(std::memory_order_relaxed) +
           sent_msgs_inter.load(std::memory_order_relaxed);
  }
  std::uint64_t sent_bytes() const noexcept {
    return sent_bytes_intra.load(std::memory_order_relaxed) +
           sent_bytes_inter.load(std::memory_order_relaxed);
  }
};

/// Plain-value snapshot of RankTraffic (copyable, for reports).
struct TrafficSnapshot {
  std::uint64_t sent_msgs_intra = 0;
  std::uint64_t sent_msgs_inter = 0;
  std::uint64_t sent_bytes_intra = 0;
  std::uint64_t sent_bytes_inter = 0;
  std::uint64_t collective_bytes_out = 0;
  std::uint64_t collective_bytes_in = 0;
  std::uint64_t collective_calls = 0;
  std::uint64_t largest_msg_bytes = 0;
  std::uint64_t dropped_msgs = 0;
  std::uint64_t duplicated_msgs = 0;

  std::uint64_t sent_msgs() const noexcept {
    return sent_msgs_intra + sent_msgs_inter;
  }
  std::uint64_t sent_bytes() const noexcept {
    return sent_bytes_intra + sent_bytes_inter;
  }
};

class TrafficRecorder {
 public:
  explicit TrafficRecorder(Topology topo)
      : topo_(topo), rows_(static_cast<std::size_t>(topo.nranks)) {}

  const Topology& topology() const noexcept { return topo_; }

  void record_send(int src, int dst, std::size_t bytes) {
    auto& row = rows_[static_cast<std::size_t>(src)];
    if (topo_.same_node(src, dst)) {
      row.sent_msgs_intra.fetch_add(1, std::memory_order_relaxed);
      row.sent_bytes_intra.fetch_add(bytes, std::memory_order_relaxed);
    } else {
      row.sent_msgs_inter.fetch_add(1, std::memory_order_relaxed);
      row.sent_bytes_inter.fetch_add(bytes, std::memory_order_relaxed);
    }
    std::uint64_t seen = row.largest_msg_bytes.load(std::memory_order_relaxed);
    while (bytes > seen && !row.largest_msg_bytes.compare_exchange_weak(
                               seen, bytes, std::memory_order_relaxed)) {
    }
  }

  /// Chaos-layer accounting: a send from `src` was discarded / duplicated.
  void record_drop(int src) {
    rows_[static_cast<std::size_t>(src)].dropped_msgs.fetch_add(
        1, std::memory_order_relaxed);
  }
  void record_duplicate(int src) {
    rows_[static_cast<std::size_t>(src)].duplicated_msgs.fetch_add(
        1, std::memory_order_relaxed);
  }

  void record_collective(int rank, std::size_t bytes_out,
                         std::size_t bytes_in) {
    auto& row = rows_[static_cast<std::size_t>(rank)];
    row.collective_calls.fetch_add(1, std::memory_order_relaxed);
    row.collective_bytes_out.fetch_add(bytes_out, std::memory_order_relaxed);
    row.collective_bytes_in.fetch_add(bytes_in, std::memory_order_relaxed);
  }

  TrafficSnapshot snapshot(int rank) const {
    const auto& r = rows_[static_cast<std::size_t>(rank)];
    TrafficSnapshot s;
    s.sent_msgs_intra = r.sent_msgs_intra.load(std::memory_order_relaxed);
    s.sent_msgs_inter = r.sent_msgs_inter.load(std::memory_order_relaxed);
    s.sent_bytes_intra = r.sent_bytes_intra.load(std::memory_order_relaxed);
    s.sent_bytes_inter = r.sent_bytes_inter.load(std::memory_order_relaxed);
    s.collective_bytes_out =
        r.collective_bytes_out.load(std::memory_order_relaxed);
    s.collective_bytes_in =
        r.collective_bytes_in.load(std::memory_order_relaxed);
    s.collective_calls = r.collective_calls.load(std::memory_order_relaxed);
    s.largest_msg_bytes = r.largest_msg_bytes.load(std::memory_order_relaxed);
    s.dropped_msgs = r.dropped_msgs.load(std::memory_order_relaxed);
    s.duplicated_msgs = r.duplicated_msgs.load(std::memory_order_relaxed);
    return s;
  }

  std::vector<TrafficSnapshot> snapshot_all() const {
    std::vector<TrafficSnapshot> out;
    out.reserve(rows_.size());
    for (int r = 0; r < topo_.nranks; ++r) out.push_back(snapshot(r));
    return out;
  }

 private:
  Topology topo_;
  std::vector<RankTraffic> rows_;
};

}  // namespace reptile::rtm
