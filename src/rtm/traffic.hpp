#pragma once
// Per-rank communication counters.
//
// Everything the performance model needs to price a run is counted here at
// the runtime layer: point-to-point messages/bytes split by intra- vs
// inter-node, and collective participation volume. Counters are per-rank
// and written only by threads of that rank, except message receipt counts
// which use relaxed atomics because sender threads touch the receiver's row.

#include <atomic>
#include <cstdint>
#include <vector>

#include "rtm/stat_counter.hpp"
#include "rtm/topology.hpp"

namespace reptile::rtm {

/// One rank's traffic counters. Atomics with relaxed ordering: counters are
/// only read after a barrier / join, which provides the synchronization.
struct RankTraffic {
  std::atomic<std::uint64_t> sent_msgs_intra{0};
  std::atomic<std::uint64_t> sent_msgs_inter{0};
  std::atomic<std::uint64_t> sent_bytes_intra{0};
  std::atomic<std::uint64_t> sent_bytes_inter{0};
  std::atomic<std::uint64_t> collective_bytes_out{0};
  std::atomic<std::uint64_t> collective_bytes_in{0};
  std::atomic<std::uint64_t> collective_calls{0};
  /// Largest single point-to-point payload sent (vectored lookups make this
  /// grow with batch size; the scalar protocol keeps it at sizeof(request)).
  std::atomic<std::uint64_t> largest_msg_bytes{0};
  /// Fault injection (rtm/chaos.hpp), attributed to the SENDING rank: how
  /// many of this rank's sends the chaos layer discarded or duplicated.
  std::atomic<std::uint64_t> dropped_msgs{0};
  std::atomic<std::uint64_t> duplicated_msgs{0};

  std::uint64_t sent_msgs() const noexcept {
    return stat_read(sent_msgs_intra) + stat_read(sent_msgs_inter);
  }
  std::uint64_t sent_bytes() const noexcept {
    return stat_read(sent_bytes_intra) + stat_read(sent_bytes_inter);
  }
};

/// Plain-value snapshot of RankTraffic (copyable, for reports).
struct TrafficSnapshot {
  std::uint64_t sent_msgs_intra = 0;
  std::uint64_t sent_msgs_inter = 0;
  std::uint64_t sent_bytes_intra = 0;
  std::uint64_t sent_bytes_inter = 0;
  std::uint64_t collective_bytes_out = 0;
  std::uint64_t collective_bytes_in = 0;
  std::uint64_t collective_calls = 0;
  std::uint64_t largest_msg_bytes = 0;
  std::uint64_t dropped_msgs = 0;
  std::uint64_t duplicated_msgs = 0;

  std::uint64_t sent_msgs() const noexcept {
    return sent_msgs_intra + sent_msgs_inter;
  }
  std::uint64_t sent_bytes() const noexcept {
    return sent_bytes_intra + sent_bytes_inter;
  }
};

class TrafficRecorder {
 public:
  explicit TrafficRecorder(Topology topo)
      : topo_(topo), rows_(static_cast<std::size_t>(topo.nranks)) {}

  const Topology& topology() const noexcept { return topo_; }

  void record_send(int src, int dst, std::size_t bytes) {
    auto& row = rows_[static_cast<std::size_t>(src)];
    if (topo_.same_node(src, dst)) {
      stat_add(row.sent_msgs_intra, 1);
      stat_add(row.sent_bytes_intra, bytes);
    } else {
      stat_add(row.sent_msgs_inter, 1);
      stat_add(row.sent_bytes_inter, bytes);
    }
    std::uint64_t seen = stat_read(row.largest_msg_bytes);
    // mo: relaxed max-CAS — still just a statistic, same argument as
    // stat_add; the loop only needs atomicity, not ordering.
    while (bytes > seen && !row.largest_msg_bytes.compare_exchange_weak(
                               seen, bytes, std::memory_order_relaxed)) {
    }
  }

  /// Chaos-layer accounting: a send from `src` was discarded / duplicated.
  void record_drop(int src) {
    stat_add(rows_[static_cast<std::size_t>(src)].dropped_msgs, 1);
  }
  void record_duplicate(int src) {
    stat_add(rows_[static_cast<std::size_t>(src)].duplicated_msgs, 1);
  }

  void record_collective(int rank, std::size_t bytes_out,
                         std::size_t bytes_in) {
    auto& row = rows_[static_cast<std::size_t>(rank)];
    stat_add(row.collective_calls, 1);
    stat_add(row.collective_bytes_out, bytes_out);
    stat_add(row.collective_bytes_in, bytes_in);
  }

  TrafficSnapshot snapshot(int rank) const {
    const auto& r = rows_[static_cast<std::size_t>(rank)];
    TrafficSnapshot s;
    s.sent_msgs_intra = stat_read(r.sent_msgs_intra);
    s.sent_msgs_inter = stat_read(r.sent_msgs_inter);
    s.sent_bytes_intra = stat_read(r.sent_bytes_intra);
    s.sent_bytes_inter = stat_read(r.sent_bytes_inter);
    s.collective_bytes_out = stat_read(r.collective_bytes_out);
    s.collective_bytes_in = stat_read(r.collective_bytes_in);
    s.collective_calls = stat_read(r.collective_calls);
    s.largest_msg_bytes = stat_read(r.largest_msg_bytes);
    s.dropped_msgs = stat_read(r.dropped_msgs);
    s.duplicated_msgs = stat_read(r.duplicated_msgs);
    return s;
  }

  std::vector<TrafficSnapshot> snapshot_all() const {
    std::vector<TrafficSnapshot> out;
    out.reserve(rows_.size());
    for (int r = 0; r < topo_.nranks; ++r) out.push_back(snapshot(r));
    return out;
  }

 private:
  Topology topo_;
  std::vector<RankTraffic> rows_;
};

}  // namespace reptile::rtm
