#pragma once
// Packed k-mer representation and manipulation.
//
// A k-mer (k <= 32) is packed into a 64-bit integer, two bits per base, with
// the FIRST base of the k-mer occupying the MOST significant occupied bits.
// This big-endian layout means packed IDs compare in the same order as their
// string spellings, and that appending a base is a shift-left-and-or.
//
// The k-mer ID is exactly what the paper calls "a number constructed from the
// characters of the sequence" (Section III, Step II); it is the key of the
// distributed k-mer spectrum.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "seq/alphabet.hpp"

namespace reptile::seq {

/// Packed k-mer identity. Only the low 2*k bits are occupied.
using kmer_id_t = std::uint64_t;

/// Maximum supported k-mer length (bases) for 64-bit packing.
inline constexpr int kMaxK = 32;

/// Stateless codec for k-mers of a fixed length `k`.
///
/// All positional arguments are 0-based from the beginning (left end) of the
/// k-mer, i.e. position 0 is the most significant base.
class KmerCodec {
 public:
  /// Constructs a codec for k-mers of `k` bases. Precondition: 1 <= k <= 32.
  explicit KmerCodec(int k);

  int k() const noexcept { return k_; }

  /// Bit-mask covering the 2*k occupied bits.
  kmer_id_t mask() const noexcept { return mask_; }

  /// Packs the first k bases of `s`. Precondition: s.size() >= k and all
  /// characters are valid bases.
  kmer_id_t pack(std::string_view s) const;

  /// Unpacks an ID back into its character spelling.
  std::string unpack(kmer_id_t id) const;

  /// Base code at `pos` (0-based from the left). Precondition: pos < k.
  base_t base_at(kmer_id_t id, int pos) const;

  /// Returns `id` with the base at `pos` replaced by `b`.
  kmer_id_t substitute(kmer_id_t id, int pos, base_t b) const;

  /// Slides the k-mer window one base to the right: drops the leftmost base
  /// and appends `incoming` at the right end.
  kmer_id_t roll(kmer_id_t id, base_t incoming) const;

  /// Reverse complement of the packed k-mer.
  kmer_id_t reverse_complement(kmer_id_t id) const;

  /// Canonical form: min(id, reverse_complement(id)). Reptile's spectrum is
  /// built over canonical k-mers so a k-mer and its reverse complement share
  /// one count.
  kmer_id_t canonical(kmer_id_t id) const;

  /// Hamming distance between two k-mer IDs (number of differing bases).
  int hamming_distance(kmer_id_t a, kmer_id_t b) const;

  /// Appends to `out` every ID at Hamming distance exactly 1 from `id`
  /// (3*k neighbors).
  void neighbors1(kmer_id_t id, std::vector<kmer_id_t>& out) const;

  /// Extracts all k-mers of a read into `out` (positions 0..n-k). Returns
  /// the number of k-mers extracted. Characters must be valid bases.
  std::size_t extract(std::string_view read, std::vector<kmer_id_t>& out) const;

 private:
  int k_;
  kmer_id_t mask_;
};

/// Parses a k-mer spelling of length `s.size()` (<= 32) into an ID using a
/// temporary codec; convenience for tests and tools.
kmer_id_t pack_kmer(std::string_view s);

/// Unpacks `id` as a `k`-base spelling; convenience for tests and tools.
std::string unpack_kmer(kmer_id_t id, int k);

}  // namespace reptile::seq
