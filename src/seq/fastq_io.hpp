#pragma once
// FASTQ parsing and the Reptile preprocessing conversion.
//
// The paper notes "At this point, Reptile is not capable of reading the
// fastq format. ... the names have been pre-processed to be sequence
// numbers" — i.e. the operational pipeline downloads FASTQ from the SRA and
// converts it to the separate FASTA + quality files with numeric headers.
// This module implements that preprocessing: a FASTQ reader (4-line
// records, Phred+33 qualities by default) and the converter that renumbers
// reads 1..N and emits the two Reptile input files.

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "seq/read.hpp"

namespace reptile::seq {

/// Conversion options.
struct FastqOptions {
  /// ASCII offset of the quality encoding (33 = Sanger/Illumina 1.8+,
  /// 64 = legacy Illumina 1.3-1.7).
  int phred_offset = 33;
  /// Replace non-ACGT base characters (N etc.) with this base; Reptile
  /// handles only the four-letter alphabet.
  char sanitize_with = 'A';
  /// Drop reads shorter than this many bases (0 keeps everything).
  int min_length = 0;
};

/// Statistics of one conversion.
struct FastqStats {
  std::uint64_t reads_in = 0;
  std::uint64_t reads_out = 0;
  std::uint64_t reads_dropped = 0;   ///< below min_length
  std::uint64_t bases_sanitized = 0; ///< non-ACGT characters replaced
};

/// Parses an entire FASTQ file into reads numbered 1..N in file order
/// (original names are discarded, as the paper's preprocessing does).
/// Throws std::runtime_error with a line number on malformed input.
std::vector<Read> read_fastq(const std::filesystem::path& path,
                             const FastqOptions& options = {},
                             FastqStats* stats = nullptr);

/// Parses FASTQ text (testing / in-memory use).
std::vector<Read> parse_fastq(const std::string& text,
                              const FastqOptions& options = {},
                              FastqStats* stats = nullptr);

/// Writes reads as FASTQ ("@<number>" headers, Phred+33 by default).
void write_fastq(const std::filesystem::path& path,
                 const std::vector<Read>& reads, int phred_offset = 33);

/// The full preprocessing step: FASTQ in, Reptile's FASTA + quality files
/// out. Returns conversion statistics.
FastqStats convert_fastq(const std::filesystem::path& fastq,
                         const std::filesystem::path& fasta_out,
                         const std::filesystem::path& qual_out,
                         const FastqOptions& options = {});

}  // namespace reptile::seq
