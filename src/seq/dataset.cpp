#include "seq/dataset.hpp"

#include <algorithm>
#include <cmath>

#include "seq/alphabet.hpp"

namespace reptile::seq {

DatasetSpec DatasetSpec::scaled(double factor) const {
  DatasetSpec out = *this;
  out.n_reads = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(std::llround(
             static_cast<double>(n_reads) * factor)));
  out.genome_size = std::max<std::uint64_t>(
      static_cast<std::uint64_t>(read_length),
      static_cast<std::uint64_t>(
          std::llround(static_cast<double>(genome_size) * factor)));
  return out;
}

DatasetSpec DatasetSpec::ecoli() {
  return {"E.Coli", 8'874'761, 102, 4'600'000, 96.0};
}

DatasetSpec DatasetSpec::drosophila() {
  return {"Drosophila", 95'674'872, 96, 122'000'000, 75.0};
}

DatasetSpec DatasetSpec::human() {
  return {"Human", 1'549'111'800, 102, 3'300'000'000ull, 47.0};
}

std::vector<DatasetSpec> DatasetSpec::table1() {
  return {ecoli(), drosophila(), human()};
}

std::string random_genome(std::uint64_t size, const GenomeParams& params,
                          Rng& rng) {
  std::string genome(size, 'A');
  for (auto& c : genome) {
    c = char_from_base(static_cast<base_t>(rng.below(kAlphabetSize)));
  }
  // Overlay repeat copies: a handful of fixed segments pasted at random
  // positions until the requested fraction of the genome is repeat content.
  if (params.repeat_fraction > 0 && params.repeat_length > 0 &&
      size > static_cast<std::uint64_t>(2 * params.repeat_length)) {
    const int seg_len = params.repeat_length;
    constexpr int kSegments = 4;
    std::vector<std::string> segments;
    segments.reserve(kSegments);
    for (int s = 0; s < kSegments; ++s) {
      std::string seg(static_cast<std::size_t>(seg_len), 'A');
      for (auto& c : seg) {
        c = char_from_base(static_cast<base_t>(rng.below(kAlphabetSize)));
      }
      segments.push_back(std::move(seg));
    }
    const auto target = static_cast<std::uint64_t>(
        static_cast<double>(size) * params.repeat_fraction);
    std::uint64_t placed = 0;
    while (placed < target) {
      const auto& seg = segments[rng.below(kSegments)];
      const std::uint64_t pos = rng.below(size - seg.size());
      std::copy(seg.begin(), seg.end(), genome.begin() + static_cast<long>(pos));
      placed += seg.size();
    }
  }
  return genome;
}

SyntheticDataset SyntheticDataset::generate(const DatasetSpec& spec,
                                            const ErrorModelParams& errors,
                                            std::uint64_t seed,
                                            const GenomeParams& genome_params) {
  SyntheticDataset out;
  out.spec = spec;
  Rng rng(seed);
  out.genome = random_genome(spec.genome_size, genome_params, rng);

  // Diploid mode: the second haplotype differs by SNPs at the requested
  // rate; each read is drawn from one haplotype uniformly.
  if (genome_params.heterozygosity > 0) {
    out.alt_genome = out.genome;
    for (auto& c : out.alt_genome) {
      if (rng.chance(genome_params.heterozygosity)) {
        const base_t original = base_from_char(c);
        const auto offset = static_cast<base_t>(1 + rng.below(3));
        c = char_from_base(
            static_cast<base_t>((original + offset) % kAlphabetSize));
        ++out.heterozygous_sites;
      }
    }
  }

  const IlluminaErrorModel model(errors, spec.n_reads);
  const auto read_len = static_cast<std::uint64_t>(spec.read_length);
  const std::uint64_t max_start =
      spec.genome_size > read_len ? spec.genome_size - read_len + 1 : 1;

  out.reads.resize(spec.n_reads);
  out.truth.resize(spec.n_reads);
  for (std::uint64_t i = 0; i < spec.n_reads; ++i) {
    const std::uint64_t start = rng.below(max_start);
    const std::string& haplotype =
        (!out.alt_genome.empty() && rng.chance(0.5)) ? out.alt_genome
                                                     : out.genome;
    out.truth[i] = haplotype.substr(start, read_len);
    Read& r = out.reads[i];
    out.total_errors += static_cast<std::uint64_t>(
        model.corrupt(out.truth[i], i, rng, r));
    r.number = i + 1;
  }
  return out;
}

std::uint64_t SyntheticDataset::erroneous_reads() const {
  std::uint64_t n = 0;
  for (std::size_t i = 0; i < reads.size(); ++i) {
    if (reads[i].bases != truth[i]) ++n;
  }
  return n;
}

}  // namespace reptile::seq
