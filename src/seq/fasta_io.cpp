#include "seq/fasta_io.hpp"

#include <cassert>
#include <charconv>
#include <sstream>
#include <stdexcept>

namespace reptile::seq {

namespace {

[[noreturn]] void io_fail(const std::filesystem::path& p, const char* what) {
  throw std::runtime_error("fasta_io: " + std::string(what) + ": " +
                           p.string());
}

/// Reads the sequence (or quality) body lines of the record the stream is
/// positioned in, stopping at the next header or EOF; the stream is left at
/// the next header line (or EOF).
std::string read_body(std::ifstream& in) {
  std::string body;
  std::string line;
  while (true) {
    const std::streamoff pos = in.tellg();
    if (!std::getline(in, line)) break;
    if (!line.empty() && line[0] == '>') {
      in.clear();
      in.seekg(pos);
      break;
    }
    body += line;
    body += ' ';  // keep token separation for quality bodies
  }
  return body;
}

std::vector<qual_t> parse_quals(const std::string& body) {
  std::vector<qual_t> out;
  std::istringstream is(body);
  int q;
  while (is >> q) out.push_back(static_cast<qual_t>(q));
  return out;
}

std::string strip_spaces(const std::string& body) {
  std::string out;
  out.reserve(body.size());
  for (char c : body) {
    if (c != ' ' && c != '\t' && c != '\r') out.push_back(c);
  }
  return out;
}

}  // namespace

void write_fasta(const std::filesystem::path& path,
                 const std::vector<Read>& reads) {
  std::ofstream out(path, std::ios::binary);
  if (!out) io_fail(path, "cannot open for writing");
  for (const Read& r : reads) {
    out << '>' << r.number << '\n' << r.bases << '\n';
  }
  if (!out) io_fail(path, "write failed");
}

void write_qual(const std::filesystem::path& path,
                const std::vector<Read>& reads) {
  std::ofstream out(path, std::ios::binary);
  if (!out) io_fail(path, "cannot open for writing");
  for (const Read& r : reads) {
    out << '>' << r.number << '\n';
    for (std::size_t i = 0; i < r.quals.size(); ++i) {
      if (i) out << ' ';
      out << static_cast<int>(r.quals[i]);
    }
    out << '\n';
  }
  if (!out) io_fail(path, "write failed");
}

void write_read_files(const std::filesystem::path& fasta,
                      const std::filesystem::path& qual,
                      const std::vector<Read>& reads) {
  write_fasta(fasta, reads);
  write_qual(qual, reads);
}

std::vector<Read> read_all(const std::filesystem::path& fasta,
                           const std::filesystem::path& qual) {
  std::ifstream fa(fasta, std::ios::binary);
  if (!fa) io_fail(fasta, "cannot open");
  std::ifstream qf(qual, std::ios::binary);
  if (!qf) io_fail(qual, "cannot open");

  std::vector<Read> reads;
  std::string line;
  while (std::getline(fa, line)) {
    const auto num = detail::parse_header(line);
    if (!num) io_fail(fasta, "expected header line");
    Read r;
    r.number = *num;
    r.bases = strip_spaces(read_body(fa));
    reads.push_back(std::move(r));
  }
  std::size_t i = 0;
  while (std::getline(qf, line)) {
    const auto num = detail::parse_header(line);
    if (!num) io_fail(qual, "expected header line");
    if (i >= reads.size() || reads[i].number != *num) {
      io_fail(qual, "quality numbering does not match FASTA");
    }
    reads[i].quals = parse_quals(read_body(qf));
    if (reads[i].quals.size() != reads[i].bases.size()) {
      io_fail(qual, "quality length does not match read length");
    }
    ++i;
  }
  if (i != reads.size()) io_fail(qual, "fewer quality records than reads");
  return reads;
}

namespace detail {

std::optional<seq_num_t> parse_header(const std::string& line) {
  if (line.empty() || line[0] != '>') return std::nullopt;
  seq_num_t value = 0;
  const char* begin = line.data() + 1;
  const char* end = line.data() + line.size();
  while (end > begin && (end[-1] == '\r' || end[-1] == ' ')) --end;
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc{} || ptr != end) return std::nullopt;
  return value;
}

std::optional<seq_num_t> first_header_at_or_after(std::ifstream& in,
                                                  std::streamoff offset,
                                                  std::streamoff* header_pos) {
  in.clear();
  in.seekg(offset);
  if (offset != 0) {
    // We may be mid-line; discard the partial line so the next getline
    // starts at a line boundary.
    std::string partial;
    if (!std::getline(in, partial)) return std::nullopt;
  }
  std::string line;
  while (true) {
    const std::streamoff pos = in.tellg();
    if (!std::getline(in, line)) return std::nullopt;
    if (const auto num = parse_header(line)) {
      if (header_pos) *header_pos = pos;
      in.clear();
      in.seekg(pos);
      return num;
    }
  }
}

std::streamoff seek_to_record(std::ifstream& in, seq_num_t target,
                              seq_num_t total_hint) {
  in.clear();
  in.seekg(0, std::ios::end);
  const std::streamoff size = in.tellg();

  // Proportional first guess, then exponential back-off while the first
  // header we land on is past the target.
  std::streamoff guess = 0;
  if (total_hint > 1) {
    guess = static_cast<std::streamoff>(
        static_cast<double>(size) *
        (static_cast<double>(target - 1) / static_cast<double>(total_hint)));
  }
  std::streamoff back = 4096;
  while (true) {
    std::streamoff pos = 0;
    const auto num = first_header_at_or_after(in, guess, &pos);
    if (num && *num <= target) {
      // Scan forward record by record to the target.
      std::string line;
      while (true) {
        const std::streamoff here = in.tellg();
        if (!std::getline(in, line)) break;
        const auto n = parse_header(line);
        if (n && *n == target) {
          in.clear();
          in.seekg(here);
          return here;
        }
        if (n && *n > target) break;  // numbering gap: target missing
      }
      throw std::runtime_error("fasta_io: record " + std::to_string(target) +
                               " not found");
    }
    if (guess == 0) {
      throw std::runtime_error("fasta_io: record " + std::to_string(target) +
                               " not found (file starts past it)");
    }
    guess = guess > back ? guess - back : 0;
    back *= 2;
  }
}

}  // namespace detail

PartitionedReadSource::PartitionedReadSource(std::filesystem::path fasta,
                                             std::filesystem::path qual,
                                             int rank, int nranks)
    : fasta_path_(std::move(fasta)), qual_path_(std::move(qual)) {
  assert(rank >= 0 && rank < nranks);
  fasta_.open(fasta_path_, std::ios::binary);
  if (!fasta_) io_fail(fasta_path_, "cannot open");
  qual_.open(qual_path_, std::ios::binary);
  if (!qual_) io_fail(qual_path_, "cannot open");

  fasta_.seekg(0, std::ios::end);
  const std::streamoff size = fasta_.tellg();

  const auto range_start = static_cast<std::streamoff>(
      static_cast<double>(size) * rank / nranks);
  const auto range_end = static_cast<std::streamoff>(
      static_cast<double>(size) * (rank + 1) / nranks);

  // First owned record: first header at or after range_start. Rank 0 always
  // starts at byte 0 (there is no partial line to skip).
  std::streamoff start_pos = 0;
  const auto first =
      detail::first_header_at_or_after(fasta_, rank == 0 ? 0 : range_start,
                                       &start_pos);
  // First record of the NEXT rank bounds our subset.
  std::optional<seq_num_t> next_first;
  if (rank + 1 < nranks) {
    std::streamoff dummy = 0;
    next_first = detail::first_header_at_or_after(fasta_, range_end, &dummy);
  }

  if (!first || (next_first && *first >= *next_first)) {
    // Empty subset (more ranks than records in this byte range).
    first_ = end_ = next_ = 0;
    count_ = 0;
    return;
  }
  first_ = *first;
  fasta_start_ = start_pos;

  if (next_first) {
    end_ = *next_first;
  } else {
    // Count the remaining records to find the end sequence number.
    fasta_.clear();
    fasta_.seekg(start_pos);
    seq_num_t last = first_;
    std::string line;
    while (std::getline(fasta_, line)) {
      if (const auto n = detail::parse_header(line)) last = *n;
    }
    end_ = last + 1;
  }
  count_ = static_cast<std::size_t>(end_ - first_);

  // Look up the same starting sequence number in the quality file so both
  // streams cover the same reads (paper Step I).
  qual_start_ = detail::seek_to_record(qual_, first_, end_);
  reset();
}

void PartitionedReadSource::reset() {
  if (count_ == 0) return;
  fasta_.clear();
  fasta_.seekg(fasta_start_);
  qual_.clear();
  qual_.seekg(qual_start_);
  next_ = first_;
}

bool PartitionedReadSource::next_chunk(std::size_t max_reads, ReadBatch& out) {
  out.clear();
  std::string line;
  while (next_ < end_ && out.size() < max_reads) {
    if (!std::getline(fasta_, line)) break;
    const auto num = detail::parse_header(line);
    if (!num) io_fail(fasta_path_, "expected header line");
    if (*num != next_) io_fail(fasta_path_, "non-contiguous sequence numbers");
    Read r;
    r.number = *num;
    r.bases = strip_spaces(read_body(fasta_));

    if (!std::getline(qual_, line)) io_fail(qual_path_, "truncated");
    const auto qnum = detail::parse_header(line);
    if (!qnum || *qnum != *num) {
      io_fail(qual_path_, "quality numbering does not match FASTA");
    }
    r.quals = parse_quals(read_body(qual_));
    if (r.quals.size() != r.bases.size()) {
      io_fail(qual_path_, "quality length does not match read length");
    }
    out.push_back(std::move(r));
    ++next_;
  }
  return !out.empty();
}

}  // namespace reptile::seq
