#include "seq/kmer.hpp"

#include <cassert>
#include <stdexcept>

namespace reptile::seq {

KmerCodec::KmerCodec(int k) : k_(k) {
  if (k < 1 || k > kMaxK) {
    throw std::invalid_argument("KmerCodec: k must be in [1, 32]");
  }
  mask_ = (k == 32) ? ~kmer_id_t{0} : ((kmer_id_t{1} << (2 * k)) - 1);
}

kmer_id_t KmerCodec::pack(std::string_view s) const {
  assert(static_cast<int>(s.size()) >= k_);
  kmer_id_t id = 0;
  for (int i = 0; i < k_; ++i) {
    const base_t b = base_from_char(s[static_cast<std::size_t>(i)]);
    assert(b != kInvalidBase);
    id = (id << 2) | b;
  }
  return id;
}

std::string KmerCodec::unpack(kmer_id_t id) const {
  std::string out(static_cast<std::size_t>(k_), 'A');
  for (int i = k_ - 1; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = char_from_base(id & 0x3);
    id >>= 2;
  }
  return out;
}

base_t KmerCodec::base_at(kmer_id_t id, int pos) const {
  assert(pos >= 0 && pos < k_);
  const int shift = 2 * (k_ - 1 - pos);
  return static_cast<base_t>((id >> shift) & 0x3);
}

kmer_id_t KmerCodec::substitute(kmer_id_t id, int pos, base_t b) const {
  assert(pos >= 0 && pos < k_);
  assert(b < kAlphabetSize);
  const int shift = 2 * (k_ - 1 - pos);
  const kmer_id_t cleared = id & ~(kmer_id_t{0x3} << shift);
  return cleared | (kmer_id_t{b} << shift);
}

kmer_id_t KmerCodec::roll(kmer_id_t id, base_t incoming) const {
  assert(incoming < kAlphabetSize);
  return ((id << 2) | incoming) & mask_;
}

kmer_id_t KmerCodec::reverse_complement(kmer_id_t id) const {
  kmer_id_t out = 0;
  for (int i = 0; i < k_; ++i) {
    out = (out << 2) | (3 - (id & 0x3));
    id >>= 2;
  }
  return out;
}

kmer_id_t KmerCodec::canonical(kmer_id_t id) const {
  const kmer_id_t rc = reverse_complement(id);
  return id < rc ? id : rc;
}

int KmerCodec::hamming_distance(kmer_id_t a, kmer_id_t b) const {
  kmer_id_t x = a ^ b;
  int d = 0;
  for (int i = 0; i < k_; ++i) {
    if (x & 0x3) ++d;
    x >>= 2;
  }
  return d;
}

void KmerCodec::neighbors1(kmer_id_t id, std::vector<kmer_id_t>& out) const {
  for (int pos = 0; pos < k_; ++pos) {
    const base_t original = base_at(id, pos);
    for (base_t b = 0; b < kAlphabetSize; ++b) {
      if (b != original) out.push_back(substitute(id, pos, b));
    }
  }
}

std::size_t KmerCodec::extract(std::string_view read,
                               std::vector<kmer_id_t>& out) const {
  if (static_cast<int>(read.size()) < k_) return 0;
  const std::size_t n = read.size() - static_cast<std::size_t>(k_) + 1;
  kmer_id_t id = pack(read);
  out.push_back(id);
  for (std::size_t i = 1; i < n; ++i) {
    const base_t b = base_from_char(read[i + static_cast<std::size_t>(k_) - 1]);
    assert(b != kInvalidBase);
    id = roll(id, b);
    out.push_back(id);
  }
  return n;
}

kmer_id_t pack_kmer(std::string_view s) {
  return KmerCodec(static_cast<int>(s.size())).pack(s);
}

std::string unpack_kmer(kmer_id_t id, int k) { return KmerCodec(k).unpack(id); }

}  // namespace reptile::seq
