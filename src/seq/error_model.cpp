#include "seq/error_model.hpp"

#include <algorithm>
#include <cmath>

#include "seq/alphabet.hpp"

namespace reptile::seq {

int phred_from_probability(double p, int min_qual, int max_qual) {
  if (p <= 0) return max_qual;
  const int q = static_cast<int>(std::lround(-10.0 * std::log10(p)));
  return std::clamp(q, min_qual, max_qual);
}

IlluminaErrorModel::IlluminaErrorModel(ErrorModelParams params,
                                       std::uint64_t total_reads)
    : params_(params), total_reads_(total_reads) {
  if (params_.burst_fraction > 0 && params_.burst_regions > 0 &&
      total_reads_ > 0) {
    const auto regions = static_cast<std::uint64_t>(params_.burst_regions);
    burst_period_ = std::max<std::uint64_t>(1, total_reads_ / regions);
    burst_span_ = static_cast<std::uint64_t>(
        static_cast<double>(burst_period_) * params_.burst_fraction);
  }
}

bool IlluminaErrorModel::in_burst(std::uint64_t file_index) const noexcept {
  if (burst_span_ == 0) return false;
  return (file_index % burst_period_) < burst_span_;
}

double IlluminaErrorModel::error_probability(int pos, int len,
                                             std::uint64_t file_index) const {
  const double t = len > 1 ? static_cast<double>(pos) / (len - 1) : 0.0;
  double p = params_.error_rate_start +
             t * (params_.error_rate_end - params_.error_rate_start);
  if (in_burst(file_index)) p *= params_.burst_multiplier;
  return std::min(p, 0.75);  // cap below the random-base limit
}

int IlluminaErrorModel::corrupt(const std::string& truth,
                                std::uint64_t file_index, Rng& rng, Read& out,
                                std::vector<int>* error_positions) const {
  const int len = static_cast<int>(truth.size());
  out.bases = truth;
  out.quals.resize(truth.size());
  int errors = 0;
  for (int i = 0; i < len; ++i) {
    const double p = error_probability(i, len, file_index);
    const bool flip = rng.chance(p);
    if (flip) {
      const base_t original = base_from_char(truth[static_cast<std::size_t>(i)]);
      // Substitute with one of the three other bases, uniformly.
      auto offset = static_cast<base_t>(1 + rng.below(3));
      const auto replacement =
          static_cast<base_t>((original + offset) % kAlphabetSize);
      out.bases[static_cast<std::size_t>(i)] = char_from_base(replacement);
      ++errors;
      if (error_positions) error_positions->push_back(i);
    }
    // Quality reflects the modeled error probability, jittered. Erroneous
    // bases tend to report lower quality, as on real machines.
    const double reported_p = flip ? std::max(p, 0.05) : p;
    int q = phred_from_probability(reported_p, params_.min_qual,
                                   params_.max_qual);
    if (params_.qual_jitter > 0) {
      q += static_cast<int>(
               rng.below(static_cast<std::uint64_t>(2 * params_.qual_jitter + 1))) -
           params_.qual_jitter;
    }
    out.quals[static_cast<std::size_t>(i)] = static_cast<qual_t>(
        std::clamp(q, params_.min_qual, params_.max_qual));
  }
  return errors;
}

}  // namespace reptile::seq
