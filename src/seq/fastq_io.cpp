#include "seq/fastq_io.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "seq/alphabet.hpp"
#include "seq/fasta_io.hpp"

namespace reptile::seq {

namespace {

[[noreturn]] void fail(std::uint64_t line, const std::string& what) {
  throw std::runtime_error("fastq line " + std::to_string(line) + ": " + what);
}

void strip_cr(std::string& s) {
  if (!s.empty() && s.back() == '\r') s.pop_back();
}

std::vector<Read> parse_stream(std::istream& in, const FastqOptions& options,
                               FastqStats* stats) {
  std::vector<Read> reads;
  FastqStats local;
  std::string header, bases, plus, quals;
  std::uint64_t line = 0;
  while (std::getline(in, header)) {
    ++line;
    strip_cr(header);
    if (header.empty()) continue;  // tolerate trailing blank lines
    if (header[0] != '@') fail(line, "expected '@' header");
    if (!std::getline(in, bases)) fail(line + 1, "truncated record (bases)");
    ++line;
    strip_cr(bases);
    if (!std::getline(in, plus)) fail(line + 1, "truncated record ('+')");
    ++line;
    strip_cr(plus);
    if (plus.empty() || plus[0] != '+') fail(line, "expected '+' separator");
    if (!std::getline(in, quals)) fail(line + 1, "truncated record (quals)");
    ++line;
    strip_cr(quals);
    if (quals.size() != bases.size()) {
      fail(line, "quality string length does not match bases");
    }
    ++local.reads_in;
    if (static_cast<int>(bases.size()) < options.min_length) {
      ++local.reads_dropped;
      continue;
    }

    Read r;
    r.bases.reserve(bases.size());
    r.quals.reserve(bases.size());
    for (std::size_t i = 0; i < bases.size(); ++i) {
      char c = bases[i];
      if (!is_valid_base_char(c)) {
        c = options.sanitize_with;
        ++local.bases_sanitized;
      }
      r.bases.push_back(static_cast<char>(std::toupper(
          static_cast<unsigned char>(c))));
      const int q = static_cast<unsigned char>(quals[i]) - options.phred_offset;
      if (q < 0 || q > 93) {
        fail(line, "quality character out of range for the chosen "
                   "phred offset");
      }
      r.quals.push_back(static_cast<qual_t>(q));
    }
    r.number = static_cast<seq_num_t>(reads.size() + 1);
    reads.push_back(std::move(r));
    ++local.reads_out;
  }
  if (stats) *stats = local;
  return reads;
}

}  // namespace

std::vector<Read> parse_fastq(const std::string& text,
                              const FastqOptions& options, FastqStats* stats) {
  std::istringstream in(text);
  return parse_stream(in, options, stats);
}

std::vector<Read> read_fastq(const std::filesystem::path& path,
                             const FastqOptions& options, FastqStats* stats) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("fastq: cannot open " + path.string());
  }
  return parse_stream(in, options, stats);
}

void write_fastq(const std::filesystem::path& path,
                 const std::vector<Read>& reads, int phred_offset) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    throw std::runtime_error("fastq: cannot open for writing " +
                             path.string());
  }
  for (const Read& r : reads) {
    out << '@' << r.number << '\n' << r.bases << "\n+\n";
    for (qual_t q : r.quals) {
      out << static_cast<char>(q + phred_offset);
    }
    out << '\n';
  }
  if (!out) {
    throw std::runtime_error("fastq: write failed: " + path.string());
  }
}

FastqStats convert_fastq(const std::filesystem::path& fastq,
                         const std::filesystem::path& fasta_out,
                         const std::filesystem::path& qual_out,
                         const FastqOptions& options) {
  FastqStats stats;
  const auto reads = read_fastq(fastq, options, &stats);
  write_read_files(fasta_out, qual_out, reads);
  return stats;
}

}  // namespace reptile::seq
