#pragma once
// Read records: a short read's sequence number, bases and Phred qualities.
//
// Reptile's input (paper Step I) is a FASTA file whose sequence names have
// been pre-processed to ascending sequence numbers starting at 1, plus a
// parallel quality-score file keyed by the same numbers. We carry both in a
// single in-memory record.

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace reptile::seq {

/// Phred quality score of one base (typically 0..41 for Illumina).
using qual_t = std::uint8_t;

/// 1-based sequence number, as used in the pre-processed FASTA headers.
using seq_num_t = std::uint64_t;

/// One short read.
struct Read {
  seq_num_t number = 0;       ///< 1-based sequence number from the header.
  std::string bases;          ///< ACGT characters.
  std::vector<qual_t> quals;  ///< Per-base Phred scores; same length as bases.

  int length() const noexcept { return static_cast<int>(bases.size()); }

  friend bool operator==(const Read& a, const Read& b) = default;
};

/// A batch of reads, the unit of chunked processing (paper: "this subset of
/// reads is read in chunks by each rank; the chunk size is also defined in
/// the configuration file").
using ReadBatch = std::vector<Read>;

/// Abstract source of reads for a rank, consumed chunk by chunk. Both the
/// in-memory datasets used in tests and the partitioned file readers used by
/// the pipelines implement this.
class ReadSource {
 public:
  virtual ~ReadSource() = default;

  /// Fills `out` (cleared first) with up to `max_reads` further reads.
  /// Returns false when the source is exhausted and `out` is empty.
  virtual bool next_chunk(std::size_t max_reads, ReadBatch& out) = 0;

  /// Rewinds to the beginning (the pipelines stream the file twice: once for
  /// spectrum construction, once for correction).
  virtual void reset() = 0;

  /// Total number of reads this source will deliver.
  virtual std::size_t size() const = 0;
};

/// ReadSource over an in-memory vector (not owning; the vector must outlive
/// the source).
class VectorReadSource final : public ReadSource {
 public:
  explicit VectorReadSource(const std::vector<Read>& reads) : reads_(&reads) {}

  bool next_chunk(std::size_t max_reads, ReadBatch& out) override {
    out.clear();
    while (pos_ < reads_->size() && out.size() < max_reads) {
      out.push_back((*reads_)[pos_++]);
    }
    return !out.empty();
  }

  void reset() override { pos_ = 0; }
  std::size_t size() const override { return reads_->size(); }

 private:
  const std::vector<Read>* reads_;
  std::size_t pos_ = 0;
};

/// ReadSource over a contiguous slice [begin, end) of an in-memory vector
/// (not owning): a rank's Step I partition of an in-memory dataset, the
/// byte-range file partitioning applied to data already in RAM.
class SliceReadSource final : public ReadSource {
 public:
  SliceReadSource(const std::vector<Read>& reads, std::size_t begin,
                  std::size_t end)
      : reads_(&reads), begin_(begin), end_(end), pos_(begin) {}

  bool next_chunk(std::size_t max_reads, ReadBatch& out) override {
    out.clear();
    while (pos_ < end_ && out.size() < max_reads) {
      out.push_back((*reads_)[pos_++]);
    }
    return !out.empty();
  }

  void reset() override { pos_ = begin_; }
  std::size_t size() const override { return end_ - begin_; }

 private:
  const std::vector<Read>* reads_;
  std::size_t begin_, end_, pos_;
};

/// ReadSource that owns its reads (used after load-balancing redistribution).
class OwningReadSource final : public ReadSource {
 public:
  explicit OwningReadSource(std::vector<Read> reads)
      : reads_(std::move(reads)) {}

  bool next_chunk(std::size_t max_reads, ReadBatch& out) override {
    out.clear();
    while (pos_ < reads_.size() && out.size() < max_reads) {
      out.push_back(reads_[pos_++]);
    }
    return !out.empty();
  }

  void reset() override { pos_ = 0; }
  std::size_t size() const override { return reads_.size(); }

  const std::vector<Read>& reads() const noexcept { return reads_; }

 private:
  std::vector<Read> reads_;
  std::size_t pos_ = 0;
};

}  // namespace reptile::seq
