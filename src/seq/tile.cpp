#include "seq/tile.hpp"

#include <cassert>
#include <stdexcept>

namespace reptile::seq {

TileCodec::TileCodec(int k, int overlap)
    : k_(k),
      overlap_(overlap),
      tile_len_(2 * k - overlap),
      step_(k - overlap),
      kmer_codec_(k),
      tile_codec_(tile_len_) {
  if (overlap < 0 || overlap >= k) {
    throw std::invalid_argument("TileCodec: overlap must be in [0, k)");
  }
  if (tile_len_ > kMaxK) {
    throw std::invalid_argument("TileCodec: 2k - overlap must be <= 32");
  }
}

tile_id_t TileCodec::combine(kmer_id_t first, kmer_id_t second) const {
  const int tail_bases = step_;  // bases contributed by the second k-mer
  const kmer_id_t tail_mask =
      (kmer_id_t{1} << (2 * tail_bases)) - 1;  // step < k <= 32 so no UB
  return (first << (2 * tail_bases)) | (second & tail_mask);
}

kmer_id_t TileCodec::first_kmer(tile_id_t id) const {
  return id >> (2 * step_);
}

kmer_id_t TileCodec::second_kmer(tile_id_t id) const {
  return id & kmer_codec_.mask();
}

std::vector<int> TileCodec::tile_positions(int read_len) const {
  std::vector<int> out;
  if (read_len < tile_len_) return out;
  int pos = 0;
  for (; pos + tile_len_ <= read_len; pos += step_) out.push_back(pos);
  if (out.back() + tile_len_ < read_len) out.push_back(read_len - tile_len_);
  return out;
}

std::size_t TileCodec::extract(std::string_view read,
                               std::vector<tile_id_t>& out) const {
  const auto positions = tile_positions(static_cast<int>(read.size()));
  for (int pos : positions) {
    out.push_back(pack(read.substr(static_cast<std::size_t>(pos))));
  }
  return positions.size();
}

}  // namespace reptile::seq
