#pragma once
// Packed tile representation.
//
// A *tile* (paper Section II-A) is "a sequence of two or more k-mers with a
// fixed overlap length between the k-mers". We implement the two-k-mer form
// used by Reptile: a tile of `2k - o` bases formed by a k-mer at offset 0 and
// a second k-mer at offset `k - o`, the two sharing `o` bases. Because a tile
// has almost twice the characters of a k-mer, correcting at tile level has
// far fewer Hamming-neighbor candidates, which is Reptile's key accuracy
// idea.
//
// Tile IDs are packed exactly like k-mer IDs (2 bits/base, big-endian), in a
// 64-bit word; this caps the tile length at 32 bases (2k - o <= 32), which is
// the "long integer ... up to 2k characters" of Step II in the paper.
//
// Within a read, tiles are laid out with stride `k - o`, so the second k-mer
// of tile i is the first k-mer of tile i+1. A final tail tile anchored at
// `read_len - tile_len` is added when the strided tiling does not reach the
// end of the read.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "seq/kmer.hpp"

namespace reptile::seq {

/// Packed tile identity. Only the low 2*tile_len bits are occupied.
using tile_id_t = std::uint64_t;

/// Codec for tiles built from two k-mers with `overlap` shared bases.
class TileCodec {
 public:
  /// Preconditions: 1 <= k <= 32, 0 <= overlap < k, 2*k - overlap <= 32.
  TileCodec(int k, int overlap);

  int k() const noexcept { return k_; }
  int overlap() const noexcept { return overlap_; }
  /// Number of bases spanned by one tile (2k - overlap).
  int tile_len() const noexcept { return tile_len_; }
  /// Offset of the second k-mer within the tile (k - overlap); also the
  /// stride between consecutive tiles of a read.
  int step() const noexcept { return step_; }
  tile_id_t mask() const noexcept { return tile_codec_.mask(); }

  /// Codec for the tile treated as one long k-mer of tile_len() bases.
  const KmerCodec& as_kmer_codec() const noexcept { return tile_codec_; }
  /// Codec for the constituent k-mers.
  const KmerCodec& kmer_codec() const noexcept { return kmer_codec_; }

  /// Packs the first tile_len() bases of `s`.
  tile_id_t pack(std::string_view s) const { return tile_codec_.pack(s); }

  /// Unpacks a tile ID into its character spelling.
  std::string unpack(tile_id_t id) const { return tile_codec_.unpack(id); }

  /// Combines the k-mer at tile offset 0 and the k-mer at tile offset
  /// step() into a tile ID. The overlapping bases are taken from `first`;
  /// callers must ensure the two k-mers actually agree on the overlap.
  tile_id_t combine(kmer_id_t first, kmer_id_t second) const;

  /// First constituent k-mer (tile offsets [0, k)).
  kmer_id_t first_kmer(tile_id_t id) const;

  /// Second constituent k-mer (tile offsets [step, tile_len)).
  kmer_id_t second_kmer(tile_id_t id) const;

  /// Base code at tile offset `pos`.
  base_t base_at(tile_id_t id, int pos) const {
    return tile_codec_.base_at(id, pos);
  }

  /// Tile with the base at offset `pos` replaced by `b`.
  tile_id_t substitute(tile_id_t id, int pos, base_t b) const {
    return tile_codec_.substitute(id, pos, b);
  }

  /// Hamming distance in bases between two tiles.
  int hamming_distance(tile_id_t a, tile_id_t b) const {
    return tile_codec_.hamming_distance(a, b);
  }

  /// Start offsets of the tiles of a read of `read_len` bases: the strided
  /// positions 0, step, 2*step, ... plus a tail tile at read_len - tile_len
  /// when needed. Empty when read_len < tile_len.
  std::vector<int> tile_positions(int read_len) const;

  /// Extracts all tile IDs of a read (at tile_positions()) into `out`;
  /// returns the number appended.
  std::size_t extract(std::string_view read, std::vector<tile_id_t>& out) const;

 private:
  int k_;
  int overlap_;
  int tile_len_;
  int step_;
  KmerCodec kmer_codec_;
  KmerCodec tile_codec_;
};

}  // namespace reptile::seq
