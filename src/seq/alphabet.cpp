#include "seq/alphabet.hpp"

#include <algorithm>

namespace reptile::seq {

bool is_valid_sequence(std::string_view s) noexcept {
  return std::all_of(s.begin(), s.end(),
                     [](char c) { return is_valid_base_char(c); });
}

std::string reverse_complement(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (auto it = s.rbegin(); it != s.rend(); ++it) {
    const base_t b = base_from_char(*it);
    out.push_back(b == kInvalidBase ? *it : char_from_base(complement(b)));
  }
  return out;
}

std::string sanitize_sequence(std::string_view s, char replacement) {
  std::string out(s);
  for (char& c : out) {
    if (!is_valid_base_char(c)) c = replacement;
  }
  return out;
}

}  // namespace reptile::seq
