#pragma once
// Small deterministic RNG (splitmix64 seeding + xoshiro256**) used by all
// synthetic data generation. Self-contained so dataset generation is
// bit-reproducible across standard libraries and platforms.

#include <cstdint>

namespace reptile::seq {

/// xoshiro256** by Blackman & Vigna (public domain), seeded via splitmix64.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) {
    std::uint64_t x = seed;
    for (auto& word : s_) {
      // splitmix64 step
      x += 0x9E3779B97F4A7C15ull;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
      word = z ^ (z >> 31);
    }
  }

  /// Next 64 uniformly random bits.
  std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). Precondition: bound > 0.
  std::uint64_t below(std::uint64_t bound) noexcept {
    // Lemire's multiply-shift rejection method.
    std::uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto l = static_cast<std::uint64_t>(m);
    if (l < bound) {
      const std::uint64_t threshold = -bound % bound;
      while (l < threshold) {
        x = next();
        m = static_cast<__uint128_t>(x) * bound;
        l = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability p.
  bool chance(double p) noexcept { return uniform() < p; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4];
};

}  // namespace reptile::seq
