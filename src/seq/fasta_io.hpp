#pragma once
// FASTA + quality-score file IO, including the paper's Step I partitioned
// parallel read.
//
// Input format (paper Section III, Step I): a FASTA file whose sequence
// names are ascending sequence numbers starting at 1, plus a quality-score
// file carrying the same sequence numbers with whitespace-separated Phred
// integers:
//
//   reads.fa            reads.qual
//   >1                  >1
//   ACGTACGT...         40 38 37 12 ...
//   >2                  >2
//   ...                 ...
//
// Each rank computes its byte range as file_size/np, scans forward to the
// first record boundary, records the starting sequence number, and looks up
// the same number in the quality file so both streams cover the same reads.

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "seq/read.hpp"

namespace reptile::seq {

/// Writes `reads` as the pre-processed FASTA file Reptile consumes
/// (headers ">1", ">2", ... in read order). Throws std::runtime_error on IO
/// failure.
void write_fasta(const std::filesystem::path& path,
                 const std::vector<Read>& reads);

/// Writes the parallel quality-score file (same headers, space-separated
/// Phred integers).
void write_qual(const std::filesystem::path& path,
                const std::vector<Read>& reads);

/// Writes both files next to each other; convenience used by dataset
/// generation.
void write_read_files(const std::filesystem::path& fasta,
                      const std::filesystem::path& qual,
                      const std::vector<Read>& reads);

/// Reads an entire FASTA + quality pair back into memory (tests and the
/// sequential baseline). Throws on malformed input or mismatched numbering.
std::vector<Read> read_all(const std::filesystem::path& fasta,
                           const std::filesystem::path& qual);

/// One rank's byte-partitioned view of a FASTA + quality pair: the rank's
/// subset is the records whose headers start in
/// [file_size*rank/np, file_size*(rank+1)/np) of the FASTA file, exactly the
/// paper's Step I. Implements ReadSource for chunked streaming.
class PartitionedReadSource final : public ReadSource {
 public:
  /// Opens both files and locates this rank's first/last sequence numbers.
  /// Preconditions: 0 <= rank < nranks.
  PartitionedReadSource(std::filesystem::path fasta, std::filesystem::path qual,
                        int rank, int nranks);

  bool next_chunk(std::size_t max_reads, ReadBatch& out) override;
  void reset() override;
  std::size_t size() const override { return count_; }

  /// First sequence number of the rank's subset; 0 when the subset is empty.
  seq_num_t first_sequence() const noexcept { return first_; }
  /// One past the last sequence number of the subset.
  seq_num_t end_sequence() const noexcept { return end_; }

 private:
  std::filesystem::path fasta_path_;
  std::filesystem::path qual_path_;
  std::ifstream fasta_;
  std::ifstream qual_;
  seq_num_t first_ = 0;  ///< first owned sequence number (1-based)
  seq_num_t end_ = 0;    ///< one past the last owned sequence number
  seq_num_t next_ = 0;   ///< next sequence number to deliver
  std::size_t count_ = 0;
  std::streamoff fasta_start_ = 0;  ///< byte offset of the first owned record
  std::streamoff qual_start_ = 0;
};

namespace detail {

/// Parses a header line ">N" into N; returns std::nullopt when the line is
/// not a header.
std::optional<seq_num_t> parse_header(const std::string& line);

/// Positions `in` at the start of the first header line at byte offset
/// >= `offset`, returning that header's sequence number, or std::nullopt
/// when no header follows. Leaves the stream positioned at the header line.
std::optional<seq_num_t> first_header_at_or_after(std::ifstream& in,
                                                  std::streamoff offset,
                                                  std::streamoff* header_pos);

/// Positions `in` at the header line of record `target`, searching around a
/// proportional guess (backing off in growing blocks when the guess
/// overshoots). Returns the byte offset of the header line. Throws when the
/// record does not exist.
std::streamoff seek_to_record(std::ifstream& in, seq_num_t target,
                              seq_num_t total_hint);

}  // namespace detail

}  // namespace reptile::seq
