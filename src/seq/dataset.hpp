#pragma once
// Dataset catalog and synthetic dataset generation.
//
// Table I of the paper fixes the three evaluation datasets:
//
//   Genome      reads         length  genome size  coverage
//   E.Coli      8,874,761     102     4.6e6        96X
//   Drosophila  95,674,872    96      1.22e8       75X
//   Human       1,549,111,800 102     3.3e9        47X
//
// The real datasets are SRA downloads we cannot access offline, so we keep
// the *geometry* (read length, coverage = length*reads/genome) and generate
// synthetic genomes + reads at a configurable scale factor. The performance
// model (src/perfmodel) scales measured per-read workload back up to the
// full read counts when reproducing the paper's figures.

#include <cstdint>
#include <string>
#include <vector>

#include "seq/error_model.hpp"
#include "seq/read.hpp"
#include "seq/rng.hpp"

namespace reptile::seq {

/// Geometry of one evaluation dataset (a Table I row).
struct DatasetSpec {
  std::string name;
  std::uint64_t n_reads = 0;
  int read_length = 0;
  std::uint64_t genome_size = 0;
  /// Coverage as LABELLED by the paper's Table I. For Drosophila and Human
  /// this matches coverage(); for E.Coli the table's own numbers give
  /// 102 * 8874761 / 4.6e6 = 196.8X, not the printed 96X (the printed value
  /// corresponds to ~half the reads — likely one mate of each pair). We
  /// keep the literal table values and record both figures.
  double nominal_coverage = 0;

  /// Read coverage, computed as in the paper:
  /// (Length * Number of Reads) / (Genome Size).
  double coverage() const noexcept {
    return genome_size == 0
               ? 0.0
               : static_cast<double>(read_length) *
                     static_cast<double>(n_reads) /
                     static_cast<double>(genome_size);
  }

  /// Returns a geometry with genome size and read count scaled by `factor`
  /// (coverage and read length preserved). Used to build laptop-scale
  /// replicas of the Table I datasets.
  DatasetSpec scaled(double factor) const;

  // Table I rows.
  static DatasetSpec ecoli();
  static DatasetSpec drosophila();
  static DatasetSpec human();
  static std::vector<DatasetSpec> table1();
};

/// Parameters controlling synthetic genome content.
struct GenomeParams {
  /// Fraction of the genome covered by copies of repeated segments
  /// (repeats create high-count k-mers, as in real genomes).
  double repeat_fraction = 0.05;
  /// Length of each repeated segment.
  int repeat_length = 400;
  /// Per-base SNP rate between the two haplotypes of a diploid sample
  /// (0 = haploid). Reads sample either haplotype with equal probability;
  /// heterozygous sites produce two balanced spectrum variants, which
  /// Reptile's dominance rule must leave uncorrected.
  double heterozygosity = 0.0;
};

/// Generates a random genome of `size` bases. A `repeat_fraction` portion is
/// tiled with copies of a few fixed segments to mimic genomic repeats.
std::string random_genome(std::uint64_t size, const GenomeParams& params,
                          Rng& rng);

/// A fully materialized synthetic dataset: genome, corrupted reads in file
/// order, and the error-free truth for accuracy scoring.
struct SyntheticDataset {
  DatasetSpec spec;
  std::string genome;
  /// Second haplotype (empty unless GenomeParams::heterozygosity > 0).
  std::string alt_genome;
  std::vector<Read> reads;        ///< observed reads, numbered 1..n in order
  std::vector<std::string> truth; ///< error-free bases, parallel to reads
  std::uint64_t total_errors = 0; ///< substitutions introduced
  std::uint64_t heterozygous_sites = 0; ///< SNPs between the haplotypes

  /// Samples `spec.n_reads` reads uniformly from a fresh random genome and
  /// corrupts them with the given error model. Deterministic in `seed`.
  static SyntheticDataset generate(const DatasetSpec& spec,
                                   const ErrorModelParams& errors,
                                   std::uint64_t seed,
                                   const GenomeParams& genome = {});

  /// Number of reads that contain at least one introduced error.
  std::uint64_t erroneous_reads() const;
};

}  // namespace reptile::seq
