#pragma once
// Chunked streaming over a ReadSource: the one loop every pipeline phase
// runs (paper: "this subset of reads is read in chunks by each rank; the
// chunk size is also defined in the configuration file").
//
// Before this header the reset-then-next_chunk loop was hand-copied into
// every construction and correction pass; ChunkStream is the single
// implementation, usable pull-style (workers drawing chunks under a lock)
// or via for_each_chunk for a whole pass.

#include <cstddef>

#include "obs/ledger.hpp"
#include "seq/read.hpp"

namespace reptile::seq {

/// Exact heap footprint of a batch: the read vector plus every read's base
/// and quality buffers (capacities, matching what the allocator holds).
inline std::size_t batch_memory_bytes(const ReadBatch& batch) noexcept {
  std::size_t bytes = batch.capacity() * sizeof(Read);
  for (const Read& read : batch) {
    bytes += read.bases.capacity() * sizeof(char) +
             read.quals.capacity() * sizeof(qual_t);
  }
  return bytes;
}

/// Pull-style chunk iterator over a ReadSource. Construction rewinds the
/// source, so one pass always starts from the first read.
class ChunkStream {
 public:
  ChunkStream(ReadSource& source, std::size_t chunk_size)
      : source_(&source), chunk_size_(chunk_size) {
    source_->reset();
  }

  /// Fills `out` (cleared first) with the next chunk; false when the
  /// source is exhausted and `out` is empty.
  bool next(ReadBatch& out) {
    const bool more = source_->next_chunk(chunk_size_, out);
    // The caller's batch is this stream's working buffer: bill its current
    // footprint to read_buffers (released when the stream ends or drains).
    charge_.set(more ? batch_memory_bytes(out) : 0);
    return more;
  }

  /// Chunks one full pass delivers (0 for an empty source) — the per-rank
  /// batch count the batch_reads heuristic reduces over.
  std::size_t chunk_count() const {
    return (source_->size() + chunk_size_ - 1) / chunk_size_;
  }

  std::size_t chunk_size() const noexcept { return chunk_size_; }

  /// Restarts the stream from the first read (the pipelines stream the
  /// input twice: construction, then correction).
  void rewind() { source_->reset(); }

 private:
  ReadSource* source_;
  std::size_t chunk_size_;
  obs::LedgerCharge charge_{obs::LedgerAccount::kReadBuffers};
};

/// Streams the whole source once, invoking fn(batch) for every non-empty
/// chunk. `fn` may mutate the batch (correction moves reads out of it).
template <class Fn>
void for_each_chunk(ReadSource& source, std::size_t chunk_size, Fn&& fn) {
  ChunkStream stream(source, chunk_size);
  ReadBatch batch;
  while (stream.next(batch)) fn(batch);
}

}  // namespace reptile::seq
