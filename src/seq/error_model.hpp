#pragma once
// Illumina-like substitution error model with Phred quality generation.
//
// Reptile targets substitution errors only (paper Section I), so the model
// introduces substitutions with a per-position probability that ramps up
// toward the 3' end of the read, as on real Illumina machines, and emits
// Phred quality scores correlated with the true per-base error probability
// (the corrector uses qualities to rank candidate positions).
//
// The model also supports *error bursts localized in file regions*: the
// paper attributes its load imbalance to "errors appear[ing] localized in
// several parts of the file", so the generator can mark contiguous spans of
// the read file as high-error regions. This is what makes the Fig. 4/6/7
// balanced-vs-imbalanced experiments meaningful.

#include <cstdint>
#include <string>
#include <vector>

#include "seq/read.hpp"
#include "seq/rng.hpp"

namespace reptile::seq {

/// Parameters of the substitution/quality model.
struct ErrorModelParams {
  /// Substitution probability at the first base of a read.
  double error_rate_start = 0.002;
  /// Substitution probability at the last base (linear ramp in between).
  double error_rate_end = 0.015;
  /// Multiplier applied to the per-base error probability for reads that
  /// fall in a burst region of the file.
  double burst_multiplier = 8.0;
  /// Fraction of the file (by read index) covered by burst regions.
  double burst_fraction = 0.0;
  /// Number of contiguous burst regions spread over the file.
  int burst_regions = 4;
  /// Quality score bounds (Phred).
  int min_qual = 2;
  int max_qual = 40;
  /// Uniform +/- jitter applied to emitted quality scores.
  int qual_jitter = 3;
};

/// Deterministic per-read error/quality generator.
class IlluminaErrorModel {
 public:
  IlluminaErrorModel(ErrorModelParams params, std::uint64_t total_reads);

  const ErrorModelParams& params() const noexcept { return params_; }

  /// True when read index `file_index` (0-based position in the output
  /// file) lies inside a burst region.
  bool in_burst(std::uint64_t file_index) const noexcept;

  /// Per-base substitution probability for position `pos` of a read of
  /// length `len` located at `file_index` in the file.
  double error_probability(int pos, int len, std::uint64_t file_index) const;

  /// Applies the model to the error-free bases `truth`, producing the
  /// observed bases and qualities of `out` (its `number` field is left to
  /// the caller) and returning the number of substitutions introduced.
  /// Positions of introduced errors are appended to `error_positions` when
  /// it is non-null.
  int corrupt(const std::string& truth, std::uint64_t file_index, Rng& rng,
              Read& out, std::vector<int>* error_positions = nullptr) const;

 private:
  ErrorModelParams params_;
  std::uint64_t total_reads_;
  std::uint64_t burst_period_ = 0;  ///< file span containing one burst
  std::uint64_t burst_span_ = 0;    ///< burst length within each period
};

/// Converts an error probability to a Phred score, clamped to [min, max].
int phred_from_probability(double p, int min_qual, int max_qual);

}  // namespace reptile::seq
