#pragma once
// DNA alphabet: 2-bit base codes, character conversion, complementation.
//
// Reptile operates on the four-letter DNA alphabet {A, C, G, T}. Bases are
// encoded as 2-bit codes (A=0, C=1, G=2, T=3) so that a k-mer of up to 32
// bases packs into a single 64-bit word (see kmer.hpp). The code order is
// chosen so that the complement of a base is `3 - code`, and so that packed
// k-mers compare in the same order as their string spellings.

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

namespace reptile::seq {

/// 2-bit code of a DNA base. Values 0..3 are valid bases.
using base_t = std::uint8_t;

inline constexpr base_t kBaseA = 0;
inline constexpr base_t kBaseC = 1;
inline constexpr base_t kBaseG = 2;
inline constexpr base_t kBaseT = 3;

/// Number of distinct bases.
inline constexpr int kAlphabetSize = 4;

/// Sentinel returned by base_from_char for characters outside {ACGTacgt}.
inline constexpr base_t kInvalidBase = 0xFF;

/// Uppercase character spelling of each base code, indexed by code.
inline constexpr std::array<char, 4> kBaseChars = {'A', 'C', 'G', 'T'};

/// Converts an ASCII character to its 2-bit base code.
/// Accepts upper- and lower-case; anything else (including 'N') yields
/// kInvalidBase. Reads containing invalid characters are either skipped or
/// have the character replaced upstream (Reptile handles only ACGT).
constexpr base_t base_from_char(char c) noexcept {
  switch (c) {
    case 'A': case 'a': return kBaseA;
    case 'C': case 'c': return kBaseC;
    case 'G': case 'g': return kBaseG;
    case 'T': case 't': return kBaseT;
    default: return kInvalidBase;
  }
}

/// Converts a 2-bit base code to its uppercase character. Precondition:
/// `b < 4`.
constexpr char char_from_base(base_t b) noexcept { return kBaseChars[b]; }

/// Watson–Crick complement of a base code (A<->T, C<->G).
constexpr base_t complement(base_t b) noexcept {
  return static_cast<base_t>(3 - b);
}

/// True iff `c` spells a valid DNA base (case-insensitive).
constexpr bool is_valid_base_char(char c) noexcept {
  return base_from_char(c) != kInvalidBase;
}

/// True iff every character of `s` is a valid DNA base.
bool is_valid_sequence(std::string_view s) noexcept;

/// Returns the reverse complement of a base-character string.
/// Invalid characters are passed through complement-of-self unchanged
/// (callers should validate first when that matters).
std::string reverse_complement(std::string_view s);

/// Replaces every non-ACGT character with the given base character
/// (default 'A', matching Reptile's preprocessing of 'N' bases).
std::string sanitize_sequence(std::string_view s, char replacement = 'A');

}  // namespace reptile::seq
