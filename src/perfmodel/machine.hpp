#pragma once
// Machine model: a LogGP-style cost model of the paper's testbed.
//
// The paper's evaluation ran on IBM BlueGene/Q: 1.6 GHz in-order PowerPC
// A2 cores, 16 user cores (64 SMT threads) and 16 GB per node, 32 ranks per
// node for most experiments, 5-D torus interconnect. We cannot time that
// hardware, so large-scale figures are produced by composing *measured
// workload counters* (src/perfmodel/workload.hpp) with the per-operation
// costs below.
//
// The constants are calibrated so the paper's anchor points land in the
// right range (Fig. 4: ~8886 s total / ~5170 s communication per rank at 128
// ranks with ~64 M remote tile lookups; Fig. 2: 32 ranks/node ~30 % slower
// than 8 ranks/node, driven by communication). Absolute seconds are a model,
// not a measurement; the reproduced quantity is the *shape* of each figure.

#include <cstddef>

namespace reptile::perfmodel {

struct MachineModel {
  // --- compute ------------------------------------------------------------
  /// Cores available for user ranks on one node.
  int cores_per_node = 16;
  /// Hardware (SMT) threads per core.
  int threads_per_core = 4;

  /// Fixed per-read overhead of the correction loop (s).
  double read_base_cost = 2.0e-4;
  /// Cost of one local hash-table lookup plus the surrounding candidate
  /// arithmetic (s). Applied to every k-mer/tile lookup, local or remote
  /// (remote lookups additionally pay the round trip).
  double lookup_compute_cost = 3.0e-5;
  /// Cost of extracting and table-inserting one k-mer or tile during
  /// construction — parsing, packing, hashing and the robin-hood insert on
  /// a 1.6 GHz in-order A2 core, including its share of file reading (s).
  double extract_insert_cost = 2.0e-6;

  // --- point-to-point messaging --------------------------------------------
  /// Effective per-lookup stall of one remote lookup between ranks on
  /// DIFFERENT nodes: round-trip latency plus the owner's service delay and
  /// queueing at 32 ranks/node (the paper's correction phase is a
  /// request-per-lookup protocol, so this effective cost — not the raw wire
  /// latency — is what the worker thread observes) (s).
  double remote_rtt_inter = 4.0e-4;
  /// Same, for ranks on the SAME node (shared-memory transport).
  double remote_rtt_intra = 5.0e-5;
  /// Effective cost of the owner probing for the request's tag before
  /// receiving it (~1.5 MPI_Iprobe calls per serviced request, including
  /// misses); universal mode removes it entirely, which is its Fig. 5
  /// advantage. Charged to the requester's round trip since the worker
  /// blocks on the reply (s).
  double probe_cost = 2.0e-5;
  /// Growth of the effective round trip with machine size: every doubling
  /// of the node count beyond the reference partition adds this fraction
  /// (longer 5-D torus routes, more link sharing). This is what bends the
  /// strong-scaling curve below ideal — the paper's 0.81 (E.Coli) / 0.64
  /// (Drosophila) efficiencies at 8x the ranks.
  double torus_hop_cost = 0.07;
  /// Node count at which remote_rtt_* were calibrated.
  int reference_nodes = 32;
  /// Extra wire time per additional payload byte (universal requests are
  /// 16 B instead of 8 B) (s/byte).
  double byte_cost = 5.0e-10;

  // --- collectives ----------------------------------------------------------
  /// Per-byte cost of alltoallv/allgatherv payload on the torus (s/byte).
  double collective_byte_cost = 1.0e-9;
  /// Latency term per collective call, multiplied by log2(np) (s).
  double collective_latency = 2.0e-5;

  // --- memory ---------------------------------------------------------------
  /// Bytes per hash-table slot (8 key + 4 count + 1 probe byte).
  double table_bytes_per_slot = 13.0;
  /// Inverse load factor of the tables (capacity/entries).
  double table_overhead = 1.6;
  std::size_t memory_per_rank_budget = 512ull << 20;  ///< paper: 512 MB/rank

  /// Compute-side slowdown from SMT oversubscription: with 2 threads per
  /// rank (worker + communication), 8 ranks/node exactly fills the 16
  /// cores; beyond that, hardware threads share cores.
  double compute_slowdown(int ranks_per_node) const;

  /// Communication-side slowdown as a function of ranks per node: more
  /// ranks share the node's injection bandwidth, and SMT sharing slows the
  /// communication threads (the Fig. 2 effect: most of the 32-vs-8
  /// ranks/node slowdown comes from communication).
  double comm_slowdown(int ranks_per_node) const;

  /// Round-trip multiplier for a partition of `nodes` nodes (>= 1).
  double rtt_scale(int nodes) const;

  /// Cost of one alltoallv round where this rank sends/receives `bytes`
  /// payload across `np` ranks.
  double alltoallv_cost(std::size_t bytes, int np, int ranks_per_node) const;

  /// The paper's testbed.
  static MachineModel bluegene_q();
};

}  // namespace reptile::perfmodel
