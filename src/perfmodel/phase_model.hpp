#pragma once
// Phase pricing: per-rank workload counters -> modeled BlueGene/Q seconds.
//
// For each rank,
//
//   construct = extract_insert_cost * extract_items * compute_slowdown
//             + alltoallv rounds (batch mode: one per chunk)
//   compute   = (read_base_cost * reads
//                + lookup_compute_cost * (kmer_lookups + tile_lookups))
//               * compute_slowdown
//   comm      = [remote_inter * rtt_inter + remote_intra * rtt_intra
//                + probe term (non-universal) + payload term (universal)]
//               * comm_slowdown
//   correct   = compute + comm
//
// The run's reported construction / correction time is the slowest rank's
// (phases end with a barrier). Memory per rank is the larger of the
// construction peak and the steady-state footprint.

#include <cstddef>
#include <vector>

#include "parallel/heuristics.hpp"
#include "perfmodel/machine.hpp"
#include "perfmodel/workload.hpp"

namespace reptile::perfmodel {

/// Modeled per-rank times and memory.
struct RankEstimate {
  double construct_seconds = 0;
  double compute_seconds = 0;  ///< correction minus communication
  double comm_seconds = 0;     ///< blocked on remote lookups
  /// Split of comm_seconds by lookup species — the paper's Fig. 2/4
  /// observation that tile traffic dominates.
  double comm_kmer_seconds = 0;
  double comm_tile_seconds = 0;
  double correct_seconds = 0;  ///< compute + comm
  double total_seconds = 0;    ///< construct + correct
  double memory_bytes = 0;
  double remote_lookups = 0;
  double substitutions = 0;
};

/// Modeled run: per-rank estimates plus the aggregate views the paper's
/// figures report.
struct RunEstimate {
  std::vector<RankEstimate> ranks;
  int np = 0;
  int ranks_per_node = 0;

  double construct_seconds() const;  ///< slowest rank
  double correct_seconds() const;    ///< slowest rank
  double total_seconds() const;      ///< slowest rank, construct + correct
  double fastest_rank_seconds() const;
  double slowest_rank_seconds() const;
  double max_comm_seconds() const;
  double min_comm_seconds() const;
  double max_memory_bytes() const;
  double max_memory_mb() const { return max_memory_bytes() / (1 << 20); }

  /// Parallel efficiency of this run against a baseline run of the same
  /// workload: (T_base * np_base) / (T_this * np_this).
  static double parallel_efficiency(const RunEstimate& base,
                                    const RunEstimate& scaled);
};

/// Prices a synthesized workload on the machine.
RunEstimate estimate_run(const MachineModel& machine,
                         const std::vector<RankWorkload>& workload,
                         int ranks_per_node, const parallel::Heuristics& heur,
                         std::size_t chunk_size);

/// Convenience: synthesize + price in one call.
RunEstimate model_run(const MachineModel& machine, const DatasetTraits& traits,
                      const seq::DatasetSpec& full, int np, int ranks_per_node,
                      const parallel::Heuristics& heur);

}  // namespace reptile::perfmodel
