#pragma once
// Workload measurement and synthesis: the bridge between the scaled
// functional runs and the paper-scale figures.
//
// Measuring: `measure_traits` runs the REAL corrector over a scaled
// synthetic dataset with an instrumented spectrum view, recording the exact
// per-read lookup stream (every k-mer/tile lookup, its owner at a reference
// rank count, whether the rank's own reads-table could answer it, whether it
// repeats). Reads are averaged into two classes — inside and outside the
// error-burst file regions — because burstiness is what drives the paper's
// load-imbalance results.
//
// Synthesizing: `synthesize_workload` combines those measured traits with
// the FULL dataset geometry (Table I read counts) and a target rank count /
// topology / heuristic set, producing per-rank workload counters
// analytically: contiguous file slices intersect the periodic burst layout
// (imbalanced mode), or reads spread uniformly (static load balancing).
// The counters then go to the phase model (phase_model.hpp) for pricing.

#include <cstdint>
#include <vector>

#include "core/params.hpp"
#include "parallel/heuristics.hpp"
#include "seq/dataset.hpp"
#include "stats/phase_timeline.hpp"

namespace reptile::perfmodel {

/// Mean per-read correction work for one read class.
struct PerReadWork {
  double tile_checks = 0;    ///< top-of-loop trusted-tile checks
  double kmer_lookups = 0;   ///< all k-mer lookups (incl. candidate checks)
  double tile_lookups = 0;   ///< all tile lookups (incl. candidate checks)
  double own_kmer_hits = 0;  ///< of the remote ones, answerable by the
                             ///< rank's own reads-table (read_kmers mode)
  double own_tile_hits = 0;
  double substitutions = 0;  ///< corrections applied
};

/// Everything measured once per dataset.
struct DatasetTraits {
  seq::DatasetSpec measured_spec;       ///< the scaled dataset measured
  core::CorrectorParams params;
  double burst_fraction = 0;            ///< file-layout of error bursts
  int burst_regions = 0;
  std::uint64_t quiet_reads = 0;
  std::uint64_t burst_reads = 0;
  PerReadWork quiet;
  PerReadWork burst;
  /// Fraction of would-be-remote lookups that repeat an ID the same rank
  /// already fetched (what the add_remote cache saves).
  double repeat_remote_fraction = 0;
  /// Spectrum census after construction: entries kept by the threshold
  /// (genome-driven, scales with genome size) vs dropped (error-driven,
  /// scales with read count).
  std::uint64_t kept_kmers = 0, dropped_kmers = 0;
  std::uint64_t kept_tiles = 0, dropped_tiles = 0;
  double kmers_per_read = 0;
  double tiles_per_read = 0;

  /// Work of an average read (burst/quiet mix as measured).
  PerReadWork average() const;
};

/// Runs the instrumented measurement. `np_ref` is the rank count used for
/// owner attribution and reads-table membership (the paper's Fig. 3/4
/// reference of 128 ranks); the owner split is insensitive to np beyond the
/// (np-1)/np factor applied at synthesis time.
DatasetTraits measure_traits(const seq::SyntheticDataset& ds,
                             const core::CorrectorParams& params,
                             const seq::ErrorModelParams& errors,
                             int np_ref = 128);

/// Synthesized per-rank counters for a full-scale run.
struct RankWorkload {
  std::uint64_t reads = 0;
  std::uint64_t burst_reads = 0;
  double kmer_lookups = 0;
  double tile_lookups = 0;
  double remote_kmer_lookups = 0;
  double remote_tile_lookups = 0;
  double remote_intra = 0;  ///< remote lookups answered on the same node
  double remote_inter = 0;
  double requests_served = 0;  ///< lookups this rank answers for others
  double substitutions = 0;
  double extract_items = 0;    ///< k-mers + tiles extracted (construction)
  double exchange_bytes = 0;   ///< Step III alltoallv payload sent
  double owned_entries = 0;    ///< post-prune spectrum entries owned
  double spectrum_bytes = 0;   ///< owned tables after pruning
  double replica_bytes = 0;    ///< allgather heuristics
  double reads_table_bytes = 0;///< read_kmers (+ add_remote cache)
  double construction_peak_bytes = 0;

  double remote_lookups() const noexcept {
    return remote_kmer_lookups + remote_tile_lookups;
  }
};

/// Projects the measured traits onto the full dataset at (np, ranks_per_node)
/// under the given heuristics. Returns one RankWorkload per rank.
std::vector<RankWorkload> synthesize_workload(
    const DatasetTraits& traits, const seq::DatasetSpec& full, int np,
    int ranks_per_node, const parallel::Heuristics& heur);

/// Projects one rank's MEASURED report (the stage graph's PhaseTimeline
/// core, shared by every driver) onto the RankWorkload shape that
/// synthesize_workload produces analytically — the other side of the same
/// seam, so a scaled functional run and the analytic projection are
/// directly comparable counter by counter.
RankWorkload workload_from_report(const stats::PhaseTimeline& report);

/// Number of reads of [begin, end) that fall inside burst regions, given
/// the periodic burst layout (burst_regions regions covering burst_fraction
/// of `total` reads). Mirrors seq::IlluminaErrorModel::in_burst.
std::uint64_t count_burst_reads(std::uint64_t begin, std::uint64_t end,
                                std::uint64_t total, double burst_fraction,
                                int burst_regions);

}  // namespace reptile::perfmodel
