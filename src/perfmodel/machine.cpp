#include "perfmodel/machine.hpp"

#include <algorithm>
#include <cmath>

namespace reptile::perfmodel {

double MachineModel::compute_slowdown(int ranks_per_node) const {
  // Each rank runs 2 threads (worker + communication). Up to one thread per
  // core there is no sharing; beyond that, SMT threads contend for the
  // in-order core. A2 SMT gives roughly 1.6x throughput for 2 threads/core
  // and 2.1x for 4, i.e. per-thread slowdowns of ~1.25x and ~1.9x.
  const int threads = 2 * ranks_per_node;
  if (threads <= cores_per_node) return 1.0;
  const double per_core =
      static_cast<double>(threads) / static_cast<double>(cores_per_node);
  if (per_core <= 2.0) return 1.0 + 0.25 * (per_core - 1.0);
  return 1.25 + 0.65 * std::min(per_core - 2.0, 2.0) / 2.0;
}

double MachineModel::comm_slowdown(int ranks_per_node) const {
  // Communication threads share the node's messaging unit and, past one
  // thread per core, the cores themselves. Calibrated so 32 ranks/node is
  // ~40-50% slower on communication than 8 ranks/node (Fig. 2: ~30% total
  // slowdown, dominated by communication).
  const int threads = 2 * ranks_per_node;
  if (threads <= cores_per_node) return 1.0;
  const double per_core =
      static_cast<double>(threads) / static_cast<double>(cores_per_node);
  return 1.0 + 0.16 * (per_core - 1.0);
}

double MachineModel::rtt_scale(int nodes) const {
  if (nodes <= reference_nodes) return 1.0;
  const double doublings = std::log2(static_cast<double>(nodes) /
                                     static_cast<double>(reference_nodes));
  return 1.0 + torus_hop_cost * doublings;
}

double MachineModel::alltoallv_cost(std::size_t bytes, int np,
                                    int ranks_per_node) const {
  const double lat =
      collective_latency * std::max(1.0, std::log2(static_cast<double>(np)));
  return lat + static_cast<double>(bytes) * collective_byte_cost *
                   comm_slowdown(ranks_per_node);
}

MachineModel MachineModel::bluegene_q() { return MachineModel{}; }

}  // namespace reptile::perfmodel
