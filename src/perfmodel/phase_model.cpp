#include "perfmodel/phase_model.hpp"

#include <algorithm>
#include <cmath>

namespace reptile::perfmodel {

namespace {
double max_over(const std::vector<RankEstimate>& ranks,
                double RankEstimate::*field) {
  double m = 0;
  for (const auto& r : ranks) m = std::max(m, r.*field);
  return m;
}
double min_over(const std::vector<RankEstimate>& ranks,
                double RankEstimate::*field) {
  if (ranks.empty()) return 0;
  double m = ranks.front().*field;
  for (const auto& r : ranks) m = std::min(m, r.*field);
  return m;
}
}  // namespace

double RunEstimate::construct_seconds() const {
  return max_over(ranks, &RankEstimate::construct_seconds);
}
double RunEstimate::correct_seconds() const {
  return max_over(ranks, &RankEstimate::correct_seconds);
}
double RunEstimate::total_seconds() const {
  return max_over(ranks, &RankEstimate::total_seconds);
}
double RunEstimate::fastest_rank_seconds() const {
  return min_over(ranks, &RankEstimate::total_seconds);
}
double RunEstimate::slowest_rank_seconds() const { return total_seconds(); }
double RunEstimate::max_comm_seconds() const {
  return max_over(ranks, &RankEstimate::comm_seconds);
}
double RunEstimate::min_comm_seconds() const {
  return min_over(ranks, &RankEstimate::comm_seconds);
}
double RunEstimate::max_memory_bytes() const {
  return max_over(ranks, &RankEstimate::memory_bytes);
}

double RunEstimate::parallel_efficiency(const RunEstimate& base,
                                        const RunEstimate& scaled) {
  const double t0 = base.total_seconds() * base.np;
  const double t1 = scaled.total_seconds() * scaled.np;
  return t1 == 0 ? 0 : t0 / t1;
}

RunEstimate estimate_run(const MachineModel& machine,
                         const std::vector<RankWorkload>& workload,
                         int ranks_per_node, const parallel::Heuristics& heur,
                         std::size_t chunk_size) {
  RunEstimate run;
  run.np = static_cast<int>(workload.size());
  run.ranks_per_node = ranks_per_node;
  run.ranks.reserve(workload.size());

  const double compute_slow = machine.compute_slowdown(ranks_per_node);
  const int nodes = (run.np + ranks_per_node - 1) / ranks_per_node;
  const double comm_slow =
      machine.comm_slowdown(ranks_per_node) * machine.rtt_scale(nodes);

  for (const RankWorkload& w : workload) {
    RankEstimate e;

    // --- construction -----------------------------------------------------
    e.construct_seconds =
        machine.extract_insert_cost * w.extract_items * compute_slow;
    const std::uint64_t rounds =
        heur.batch_reads
            ? std::max<std::uint64_t>(1, (w.reads + chunk_size - 1) / chunk_size)
            : 1;
    // Payload is spread over the rounds; each round pays the latency term.
    const auto bytes_per_round =
        static_cast<std::size_t>(w.exchange_bytes / static_cast<double>(rounds));
    e.construct_seconds +=
        static_cast<double>(rounds) *
        machine.alltoallv_cost(bytes_per_round, run.np, ranks_per_node);
    if (heur.read_kmers) {
      // Global-count fetch: two extra alltoallv rounds over the reads-table
      // IDs (approximated by the reads-table size in entries * 8 B).
      const auto fetch_bytes = static_cast<std::size_t>(
          w.reads_table_bytes / (13.0 * 1.6) * 8.0);
      e.construct_seconds +=
          2 * machine.alltoallv_cost(fetch_bytes, run.np, ranks_per_node);
    }
    if (heur.allgather_kmers || heur.allgather_tiles) {
      e.construct_seconds += machine.alltoallv_cost(
          static_cast<std::size_t>(w.replica_bytes), run.np, ranks_per_node);
    }

    // --- correction: compute side ------------------------------------------
    e.compute_seconds =
        (machine.read_base_cost * static_cast<double>(w.reads) +
         machine.lookup_compute_cost * (w.kmer_lookups + w.tile_lookups)) *
        compute_slow;

    // --- correction: communication side --------------------------------------
    double comm = w.remote_inter * machine.remote_rtt_inter +
                  w.remote_intra * machine.remote_rtt_intra;
    if (heur.universal) {
      // Bigger self-describing request (16 B vs 8 B), no probes anywhere.
      comm += w.remote_lookups() * 8.0 * machine.byte_cost;
    } else {
      // The worker's round trip includes the owner's probe work (~1.5
      // probes per serviced request: one hit plus occasional misses).
      comm += w.remote_lookups() * 1.5 * machine.probe_cost;
    }
    e.comm_seconds = comm * comm_slow;
    // Species split, proportional to the remote lookup mix (both species
    // share the same transport).
    const double remote_total = w.remote_lookups();
    if (remote_total > 0) {
      e.comm_tile_seconds =
          e.comm_seconds * (w.remote_tile_lookups / remote_total);
      e.comm_kmer_seconds = e.comm_seconds - e.comm_tile_seconds;
    }
    e.correct_seconds = e.compute_seconds + e.comm_seconds;
    e.total_seconds = e.construct_seconds + e.correct_seconds;

    // --- memory -------------------------------------------------------------
    const double steady =
        w.spectrum_bytes + w.replica_bytes + w.reads_table_bytes;
    e.memory_bytes = std::max(steady, w.construction_peak_bytes);

    e.remote_lookups = w.remote_lookups();
    e.substitutions = w.substitutions;
    run.ranks.push_back(e);
  }
  return run;
}

RunEstimate model_run(const MachineModel& machine, const DatasetTraits& traits,
                      const seq::DatasetSpec& full, int np, int ranks_per_node,
                      const parallel::Heuristics& heur) {
  const auto workload =
      synthesize_workload(traits, full, np, ranks_per_node, heur);
  return estimate_run(machine, workload, ranks_per_node, heur,
                      traits.params.chunk_size);
}

}  // namespace reptile::perfmodel
