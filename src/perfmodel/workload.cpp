#include "perfmodel/workload.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "core/corrector.hpp"
#include "core/spectrum.hpp"
#include "hash/hashing.hpp"
#include "seq/error_model.hpp"

namespace reptile::perfmodel {

namespace {

/// SpectrumView decorator that reports every lookup (with the canonical ID
/// actually used for ownership) to a callback before answering from the
/// wrapped local spectrum.
class RecordingView final : public core::SpectrumView {
 public:
  enum class Kind { kKmer, kTile };
  using Callback = void (*)(void*, Kind, std::uint64_t);

  RecordingView(core::LocalSpectrum& base, void* ctx, Callback cb)
      : base_(&base), ctx_(ctx), cb_(cb) {}

  std::uint32_t kmer_count(seq::kmer_id_t id) override {
    cb_(ctx_, Kind::kKmer, base_->canon_kmer(id));
    return base_->kmer_count(id);
  }
  std::uint32_t tile_count(seq::tile_id_t id) override {
    cb_(ctx_, Kind::kTile, base_->canon_tile(id));
    return base_->tile_count(id);
  }
  const core::LookupStats& stats() const override { return base_->stats(); }

 private:
  core::LocalSpectrum* base_;
  void* ctx_;
  Callback cb_;
};

struct MeasureContext {
  int np_ref = 0;
  int rank = 0;  ///< rank of the read currently being corrected
  const std::vector<std::unordered_set<std::uint64_t>>* rank_kmer_sets;
  const std::vector<std::unordered_set<std::uint64_t>>* rank_tile_sets;
  std::vector<std::unordered_set<std::uint64_t>>* seen_remote;  ///< per rank
  // Per-read accumulators.
  PerReadWork read_work;
  std::uint64_t remote_lookups = 0;
  std::uint64_t repeat_lookups = 0;

  void on_lookup(RecordingView::Kind kind, std::uint64_t id) {
    const bool is_kmer = kind == RecordingView::Kind::kKmer;
    if (is_kmer) {
      read_work.kmer_lookups += 1;
    } else {
      read_work.tile_lookups += 1;
    }
    const int owner = hash::owner_of(id, np_ref);
    if (owner == rank) return;
    const auto r = static_cast<std::size_t>(rank);
    const bool own_hit = is_kmer ? (*rank_kmer_sets)[r].contains(id)
                                 : (*rank_tile_sets)[r].contains(id);
    if (own_hit) {
      (is_kmer ? read_work.own_kmer_hits : read_work.own_tile_hits) += 1;
      return;  // resolved by the reads-table in read_kmers mode
    }
    ++remote_lookups;
    auto& seen = (*seen_remote)[r];
    // Key the two ID spaces apart (k-mer vs tile IDs can collide).
    const std::uint64_t key = hash::mix64(id) ^ (is_kmer ? 0 : 1);
    if (!seen.insert(key).second) ++repeat_lookups;
  }
};

void record_cb(void* ctx, RecordingView::Kind kind, std::uint64_t id) {
  static_cast<MeasureContext*>(ctx)->on_lookup(kind, id);
}

void accumulate(PerReadWork& into, const PerReadWork& w) {
  into.tile_checks += w.tile_checks;
  into.kmer_lookups += w.kmer_lookups;
  into.tile_lookups += w.tile_lookups;
  into.own_kmer_hits += w.own_kmer_hits;
  into.own_tile_hits += w.own_tile_hits;
  into.substitutions += w.substitutions;
}

PerReadWork divide(const PerReadWork& sum, std::uint64_t n) {
  if (n == 0) return {};
  const auto d = static_cast<double>(n);
  return {sum.tile_checks / d,   sum.kmer_lookups / d, sum.tile_lookups / d,
          sum.own_kmer_hits / d, sum.own_tile_hits / d,
          sum.substitutions / d};
}

}  // namespace

PerReadWork DatasetTraits::average() const {
  const std::uint64_t total = quiet_reads + burst_reads;
  if (total == 0) return {};
  const double wq = static_cast<double>(quiet_reads) / total;
  const double wb = static_cast<double>(burst_reads) / total;
  PerReadWork out;
  out.tile_checks = wq * quiet.tile_checks + wb * burst.tile_checks;
  out.kmer_lookups = wq * quiet.kmer_lookups + wb * burst.kmer_lookups;
  out.tile_lookups = wq * quiet.tile_lookups + wb * burst.tile_lookups;
  out.own_kmer_hits = wq * quiet.own_kmer_hits + wb * burst.own_kmer_hits;
  out.own_tile_hits = wq * quiet.own_tile_hits + wb * burst.own_tile_hits;
  out.substitutions = wq * quiet.substitutions + wb * burst.substitutions;
  return out;
}

DatasetTraits measure_traits(const seq::SyntheticDataset& ds,
                             const core::CorrectorParams& params,
                             const seq::ErrorModelParams& errors,
                             int np_ref) {
  DatasetTraits traits;
  traits.measured_spec = ds.spec;
  traits.params = params;
  traits.burst_fraction = errors.burst_fraction;
  traits.burst_regions = errors.burst_regions;

  // --- construction census -------------------------------------------------
  core::LocalSpectrum spectrum(params);
  for (const auto& r : ds.reads) spectrum.add_read(r.bases);
  // Count kept vs dropped (kept = survives the threshold).
  std::uint64_t kept_k = 0, kept_t = 0;
  spectrum.kmers().for_each([&](std::uint64_t, std::uint32_t c) {
    if (c >= params.kmer_threshold) ++kept_k;
  });
  spectrum.tiles().for_each([&](std::uint64_t, std::uint32_t c) {
    if (c >= params.tile_threshold) ++kept_t;
  });
  traits.kept_kmers = kept_k;
  traits.dropped_kmers = spectrum.kmer_entries() - kept_k;
  traits.kept_tiles = kept_t;
  traits.dropped_tiles = spectrum.tile_entries() - kept_t;
  spectrum.prune();

  const seq::TileCodec tc(params.k, params.tile_overlap);
  const int read_len = ds.spec.read_length;
  traits.kmers_per_read = std::max(0, read_len - params.k + 1);
  traits.tiles_per_read =
      static_cast<double>(tc.tile_positions(read_len).size());

  // --- per-rank reads-table membership sets (np_ref attribution) ----------
  const auto n = ds.reads.size();
  std::vector<std::unordered_set<std::uint64_t>> kmer_sets(
      static_cast<std::size_t>(np_ref));
  std::vector<std::unordered_set<std::uint64_t>> tile_sets(
      static_cast<std::size_t>(np_ref));
  core::SpectrumExtractor extractor(params);
  {
    std::vector<seq::kmer_id_t> kmers;
    std::vector<seq::tile_id_t> tiles;
    for (std::size_t i = 0; i < n; ++i) {
      const auto rank = static_cast<std::size_t>(
          i * static_cast<std::size_t>(np_ref) / n);
      kmers.clear();
      tiles.clear();
      extractor.extract(ds.reads[i].bases, kmers, tiles);
      kmer_sets[rank].insert(kmers.begin(), kmers.end());
      tile_sets[rank].insert(tiles.begin(), tiles.end());
    }
  }

  // --- instrumented correction pass ---------------------------------------
  const seq::IlluminaErrorModel burst_model(errors, ds.spec.n_reads);
  std::vector<std::unordered_set<std::uint64_t>> seen_remote(
      static_cast<std::size_t>(np_ref));
  MeasureContext ctx;
  ctx.np_ref = np_ref;
  ctx.rank_kmer_sets = &kmer_sets;
  ctx.rank_tile_sets = &tile_sets;
  ctx.seen_remote = &seen_remote;
  RecordingView view(spectrum, &ctx, &record_cb);
  core::TileCorrector corrector(params);

  PerReadWork quiet_sum, burst_sum;
  std::uint64_t total_remote = 0, total_repeats = 0;
  const double tile_positions_per_read = traits.tiles_per_read;
  for (std::size_t i = 0; i < n; ++i) {
    ctx.rank = static_cast<int>(i * static_cast<std::size_t>(np_ref) / n);
    ctx.read_work = {};
    ctx.read_work.tile_checks = tile_positions_per_read;
    ctx.remote_lookups = 0;
    ctx.repeat_lookups = 0;
    seq::Read copy = ds.reads[i];
    const auto rc = corrector.correct(copy, view);
    ctx.read_work.substitutions = rc.substitutions;
    if (burst_model.in_burst(i)) {
      accumulate(burst_sum, ctx.read_work);
      ++traits.burst_reads;
    } else {
      accumulate(quiet_sum, ctx.read_work);
      ++traits.quiet_reads;
    }
    total_remote += ctx.remote_lookups;
    total_repeats += ctx.repeat_lookups;
  }
  traits.quiet = divide(quiet_sum, traits.quiet_reads);
  traits.burst = divide(burst_sum, traits.burst_reads);
  traits.repeat_remote_fraction =
      total_remote == 0 ? 0
                        : static_cast<double>(total_repeats) /
                              static_cast<double>(total_remote);
  return traits;
}

std::uint64_t count_burst_reads(std::uint64_t begin, std::uint64_t end,
                                std::uint64_t total, double burst_fraction,
                                int burst_regions) {
  if (burst_fraction <= 0 || burst_regions <= 0 || total == 0 || begin >= end) {
    return 0;
  }
  const std::uint64_t period =
      std::max<std::uint64_t>(1, total / static_cast<std::uint64_t>(burst_regions));
  const auto span = static_cast<std::uint64_t>(
      static_cast<double>(period) * burst_fraction);
  if (span == 0) return 0;
  // Count i in [begin, end) with (i % period) < span.
  auto cumulative = [&](std::uint64_t x) {
    const std::uint64_t full = x / period;
    const std::uint64_t rem = x % period;
    return full * span + std::min(rem, span);
  };
  return cumulative(end) - cumulative(begin);
}

std::vector<RankWorkload> synthesize_workload(
    const DatasetTraits& traits, const seq::DatasetSpec& full, int np,
    int ranks_per_node, const parallel::Heuristics& heur) {
  std::vector<RankWorkload> ranks(static_cast<std::size_t>(np));
  const std::uint64_t n = full.n_reads;
  // Lookups leave the rank when the owner is neither self nor (with partial
  // replication) a member of the rank's replication group.
  const int group = std::min(std::max(1, heur.partial_replication_group), np);
  const double remote_factor =
      np > 1 ? static_cast<double>(np - group) / static_cast<double>(np) : 0.0;
  // Step II/III ownership is unaffected by replication: every non-owned
  // extraction is still exchanged to its owner.
  const double exchange_factor =
      np > 1 ? static_cast<double>(np - 1) / static_cast<double>(np) : 0.0;
  // Of the remaining remote owners, those on the same node (but outside the
  // replication group) use the shared-memory transport.
  const int local_peers =
      std::max(0, std::min(ranks_per_node, np) - group);
  const double intra_share =
      np > group ? static_cast<double>(local_peers) /
                       static_cast<double>(np - group)
                 : 0.0;

  // Full-scale spectrum census: kept entries scale with the genome, dropped
  // (error-noise) entries scale with the read count.
  const double genome_ratio = static_cast<double>(full.genome_size) /
                              static_cast<double>(traits.measured_spec.genome_size);
  const double reads_ratio = static_cast<double>(full.n_reads) /
                             static_cast<double>(traits.measured_spec.n_reads);
  const double kept_full =
      static_cast<double>(traits.kept_kmers + traits.kept_tiles) * genome_ratio;
  const double dropped_full =
      static_cast<double>(traits.dropped_kmers + traits.dropped_tiles) *
      reads_ratio;
  const double table_bytes_per_entry = 13.0 * 1.6;

  // Global burst share (for the balanced mode's per-rank mix).
  const std::uint64_t total_burst = count_burst_reads(
      0, n, n, traits.burst_fraction, traits.burst_regions);

  double total_remote = 0;
  for (int r = 0; r < np; ++r) {
    RankWorkload& w = ranks[static_cast<std::size_t>(r)];
    const std::uint64_t begin =
        n * static_cast<std::uint64_t>(r) / static_cast<std::uint64_t>(np);
    const std::uint64_t end =
        n * static_cast<std::uint64_t>(r + 1) / static_cast<std::uint64_t>(np);
    w.reads = end - begin;
    if (heur.load_balance) {
      // Hashing spreads burst reads uniformly: every rank gets the global
      // burst share.
      w.burst_reads = static_cast<std::uint64_t>(
          static_cast<double>(w.reads) * static_cast<double>(total_burst) /
          static_cast<double>(n));
    } else {
      w.burst_reads = count_burst_reads(begin, end, n, traits.burst_fraction,
                                        traits.burst_regions);
    }
    const auto quiet_reads = static_cast<double>(w.reads - w.burst_reads);
    const auto burst_reads = static_cast<double>(w.burst_reads);

    w.kmer_lookups = quiet_reads * traits.quiet.kmer_lookups +
                     burst_reads * traits.burst.kmer_lookups;
    w.tile_lookups = quiet_reads * traits.quiet.tile_lookups +
                     burst_reads * traits.burst.tile_lookups;
    w.substitutions = quiet_reads * traits.quiet.substitutions +
                      burst_reads * traits.burst.substitutions;

    double remote_k = w.kmer_lookups * remote_factor;
    double remote_t = w.tile_lookups * remote_factor;
    if (heur.read_kmers) {
      remote_k -= (quiet_reads * traits.quiet.own_kmer_hits +
                   burst_reads * traits.burst.own_kmer_hits);
      remote_t -= (quiet_reads * traits.quiet.own_tile_hits +
                   burst_reads * traits.burst.own_tile_hits);
      remote_k = std::max(0.0, remote_k);
      remote_t = std::max(0.0, remote_t);
    }
    if (heur.add_remote) {
      remote_k *= 1.0 - traits.repeat_remote_fraction;
      remote_t *= 1.0 - traits.repeat_remote_fraction;
    }
    if (heur.allgather_kmers) remote_k = 0;
    if (heur.allgather_tiles) remote_t = 0;
    w.remote_kmer_lookups = remote_k;
    w.remote_tile_lookups = remote_t;
    w.remote_intra = (remote_k + remote_t) * intra_share;
    w.remote_inter = (remote_k + remote_t) * (1.0 - intra_share);
    total_remote += remote_k + remote_t;

    // Construction counters.
    w.extract_items = static_cast<double>(w.reads) *
                      (traits.kmers_per_read + traits.tiles_per_read);
    w.exchange_bytes = w.extract_items * exchange_factor * 12.0;

    w.owned_entries = kept_full / np;
    w.spectrum_bytes = w.owned_entries * table_bytes_per_entry;
    if (group > 1) {
      // Partial replication: the rank also holds its group's shards.
      w.replica_bytes += w.owned_entries * table_bytes_per_entry * group;
    }
    if (heur.allgather_kmers) {
      w.replica_bytes += static_cast<double>(traits.kept_kmers) *
                         genome_ratio * table_bytes_per_entry;
    }
    if (heur.allgather_tiles) {
      w.replica_bytes += static_cast<double>(traits.kept_tiles) *
                         genome_ratio * table_bytes_per_entry;
    }
    if (heur.read_kmers) {
      // The rank's reads tables hold its (mostly distinct) non-owned IDs.
      const double distinct_cap = (kept_full + dropped_full);
      w.reads_table_bytes =
          std::min(w.extract_items * exchange_factor, distinct_cap) *
          table_bytes_per_entry;
      if (heur.add_remote) {
        w.reads_table_bytes +=
            (remote_k + remote_t) * (1.0 - traits.repeat_remote_fraction) *
            table_bytes_per_entry * 0.5;  // cached replies, absences included
      }
    }

    // Construction peak: owned tables before pruning plus the pending
    // (reads) tables; batch mode caps pending at one chunk. Bloom-filter
    // construction keeps pre-prune singletons out of the exact tables at
    // the cost of the filter bits.
    double preprune_owned =
        (kept_full + dropped_full) / np * table_bytes_per_entry;
    if (heur.bloom_construction) {
      // Exact tables hold only the kept entries; every distinct ID costs
      // ~9.6 filter bits (1% false-positive sizing) instead.
      const double bloom_bytes = (kept_full + dropped_full) / np * 1.2;
      preprune_owned = kept_full / np * table_bytes_per_entry + bloom_bytes;
    }
    const double pending_items =
        heur.batch_reads
            ? static_cast<double>(std::min<std::uint64_t>(
                  traits.params.chunk_size, w.reads)) *
                  (traits.kmers_per_read + traits.tiles_per_read) *
                  exchange_factor
            : w.extract_items * exchange_factor;
    w.construction_peak_bytes =
        preprune_owned + pending_items * table_bytes_per_entry;
  }

  // Service load: owners are uniform, so each rank answers 1/np of all
  // remote lookups.
  for (auto& w : ranks) {
    w.requests_served = total_remote / np;
  }
  return ranks;
}

RankWorkload workload_from_report(const stats::PhaseTimeline& report) {
  RankWorkload w;
  w.reads = report.reads_processed;
  w.kmer_lookups = static_cast<double>(report.lookups.kmer_lookups);
  w.tile_lookups = static_cast<double>(report.lookups.tile_lookups);
  w.remote_kmer_lookups =
      static_cast<double>(report.remote.remote_kmer_lookups);
  w.remote_tile_lookups =
      static_cast<double>(report.remote.remote_tile_lookups);
  w.requests_served = static_cast<double>(report.service.requests_served);
  w.substitutions = static_cast<double>(report.substitutions);
  const auto& fp = report.footprint_after_construction;
  w.owned_entries =
      static_cast<double>(fp.hash_kmer_entries + fp.hash_tile_entries);
  w.spectrum_bytes = static_cast<double>(fp.bytes);
  w.construction_peak_bytes =
      static_cast<double>(report.construction_peak_bytes);
  return w;
}

}  // namespace reptile::perfmodel
