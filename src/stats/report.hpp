#pragma once
// Machine-readable run reports.
//
// The bench binaries print human tables; downstream analysis (plotting the
// reproduced figures, regression tracking) wants flat records. RunReport
// renders per-rank pipeline statistics as CSV and as a minimal JSON
// document (no external dependency — the writer only needs numbers and
// ASCII identifiers).

#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

namespace reptile::stats {

/// One named numeric field of a record.
struct ReportField {
  std::string name;
  double value = 0;
};

/// A flat table of records with a shared schema (records may omit trailing
/// fields; missing values render as 0).
class RunReport {
 public:
  explicit RunReport(std::string title) : title_(std::move(title)) {}

  const std::string& title() const noexcept { return title_; }

  /// Starts a new record; subsequent add() calls fill it.
  RunReport& record() {
    records_.emplace_back();
    return *this;
  }

  /// Adds a field to the current record. The first record defines the
  /// schema order; later records must add fields in the same order (they
  /// may omit trailing fields, which render as 0). An unknown field name,
  /// an out-of-order field, or more fields than the schema holds throws
  /// std::logic_error naming the offending field — a schema drift that
  /// silently misaligned CSV columns before.
  RunReport& add(const std::string& name, double value) {
    if (records_.empty()) {
      throw std::logic_error(
          "RunReport::add: no current record; call record() first");
    }
    auto& rec = records_.back();
    if (records_.size() == 1) {
      schema_.push_back(name);
    } else if (rec.size() >= schema_.size()) {
      throw std::logic_error("RunReport::add: field \"" + name +
                             "\" exceeds the schema defined by the first "
                             "record (" +
                             std::to_string(schema_.size()) + " fields)");
    } else if (schema_[rec.size()] != name) {
      throw std::logic_error("RunReport::add: field \"" + name +
                             "\" at position " + std::to_string(rec.size()) +
                             " does not match the schema (expected \"" +
                             schema_[rec.size()] +
                             "\"); records must add fields in the order the "
                             "first record defined");
    }
    rec.push_back({name, value});
    return *this;
  }

  std::size_t size() const noexcept { return records_.size(); }
  const std::vector<std::string>& schema() const noexcept { return schema_; }

  /// CSV with a header row; numbers rendered with full precision.
  std::string to_csv() const {
    std::ostringstream os;
    for (std::size_t c = 0; c < schema_.size(); ++c) {
      if (c) os << ',';
      os << schema_[c];
    }
    os << '\n';
    for (const auto& rec : records_) {
      for (std::size_t c = 0; c < schema_.size(); ++c) {
        if (c) os << ',';
        if (c < rec.size()) emit_number(os, rec[c].value);
      }
      os << '\n';
    }
    return os.str();
  }

  /// JSON: {"title": ..., "records": [{field: value, ...}, ...]}.
  std::string to_json() const {
    std::ostringstream os;
    os << "{\"title\":\"" << escape(title_) << "\",\"records\":[";
    for (std::size_t r = 0; r < records_.size(); ++r) {
      if (r) os << ',';
      os << '{';
      for (std::size_t c = 0; c < records_[r].size(); ++c) {
        if (c) os << ',';
        os << '"' << escape(records_[r][c].name) << "\":";
        emit_number(os, records_[r][c].value);
      }
      os << '}';
    }
    os << "]}";
    return os.str();
  }

 private:
  static void emit_number(std::ostream& os, double v) {
    // Integers print without a decimal point; others with enough digits to
    // round-trip.
    if (v == static_cast<double>(static_cast<long long>(v)) &&
        v > -1e15 && v < 1e15) {
      os << static_cast<long long>(v);
    } else {
      os.precision(17);
      os << v;
    }
  }

  static std::string escape(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
      if (c == '"' || c == '\\') out.push_back('\\');
      if (static_cast<unsigned char>(c) < 0x20) continue;  // drop control chars
      out.push_back(c);
    }
    return out;
  }

  std::string title_;
  std::vector<std::string> schema_;
  std::vector<std::vector<ReportField>> records_;
};

}  // namespace reptile::stats
