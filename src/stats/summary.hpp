#pragma once
// Descriptive statistics over per-rank measurements.
//
// The paper's evaluation repeatedly reports per-rank spreads ("the variation
// between the ranks having the highest and the lowest number of k-mers is
// less than 1%", fastest vs slowest rank times, etc.); Summary captures
// exactly those quantities.

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <span>

namespace reptile::stats {

struct Summary {
  std::size_t n = 0;
  double min = 0;
  double max = 0;
  double mean = 0;
  double stddev = 0;

  /// (max - min) / mean: the paper's "variation between the ranks having
  /// the highest and the lowest" as a fraction of the average.
  double relative_spread() const noexcept {
    return mean == 0 ? 0 : (max - min) / mean;
  }

  /// max / mean: the load-imbalance factor (1.0 = perfectly balanced).
  double imbalance() const noexcept { return mean == 0 ? 0 : max / mean; }
};

template <class T>
Summary summarize(std::span<const T> values) {
  Summary s;
  s.n = values.size();
  if (values.empty()) return s;
  double sum = 0;
  s.min = s.max = static_cast<double>(values[0]);
  for (const T& v : values) {
    const auto x = static_cast<double>(v);
    s.min = std::min(s.min, x);
    s.max = std::max(s.max, x);
    sum += x;
  }
  s.mean = sum / static_cast<double>(s.n);
  double ss = 0;
  for (const T& v : values) {
    const double d = static_cast<double>(v) - s.mean;
    ss += d * d;
  }
  s.stddev = std::sqrt(ss / static_cast<double>(s.n));
  return s;
}

}  // namespace reptile::stats
