#pragma once
// Error-correction accuracy scoring against ground truth.
//
// Standard spectrum-corrector metrics (Yang, Chockalingam, Aluru 2013
// survey): a corrected base is a true positive when an introduced error was
// reverted to the truth, a false positive when the corrector changed a base
// that was correct, and a false negative when an introduced error survived.
//
//   sensitivity = TP / (TP + FN)        (fraction of errors removed)
//   gain        = (TP - FP) / (TP + FN) (net improvement; can be negative)

#include <cstdint>
#include <string>
#include <vector>

#include "seq/read.hpp"

namespace reptile::stats {

struct AccuracyReport {
  std::uint64_t true_positives = 0;   ///< errors corrected to the truth
  std::uint64_t false_positives = 0;  ///< correct bases miscorrected
  std::uint64_t false_negatives = 0;  ///< errors left (or changed wrongly)
  std::uint64_t reads_changed = 0;    ///< reads touched by the corrector
  std::uint64_t reads_fully_fixed = 0;///< erroneous reads now exactly true

  double sensitivity() const noexcept {
    const double d = static_cast<double>(true_positives + false_negatives);
    return d == 0 ? 1.0 : static_cast<double>(true_positives) / d;
  }
  double gain() const noexcept {
    const double d = static_cast<double>(true_positives + false_negatives);
    if (d == 0) {
      // No errors existed: perfect if nothing was broken, otherwise count
      // each miscorrection as a full unit of damage.
      return false_positives == 0 ? 1.0
                                  : -static_cast<double>(false_positives);
    }
    return (static_cast<double>(true_positives) -
            static_cast<double>(false_positives)) /
           d;
  }
};

/// Scores corrected reads against the error-free truth. `observed`,
/// `corrected` and `truth` are parallel arrays in the same read order.
inline AccuracyReport score_correction(
    const std::vector<seq::Read>& observed,
    const std::vector<seq::Read>& corrected,
    const std::vector<std::string>& truth) {
  AccuracyReport rep;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    const std::string& obs = observed[i].bases;
    const std::string& cor = corrected[i].bases;
    const std::string& tru = truth[i];
    bool changed = false;
    for (std::size_t p = 0; p < tru.size(); ++p) {
      const bool was_error = obs[p] != tru[p];
      const bool now_error = cor[p] != tru[p];
      if (obs[p] != cor[p]) changed = true;
      if (was_error && !now_error) {
        ++rep.true_positives;
      } else if (!was_error && now_error) {
        ++rep.false_positives;
      } else if (was_error && now_error) {
        ++rep.false_negatives;
      }
    }
    if (changed) ++rep.reads_changed;
    if (obs != tru && cor == tru) ++rep.reads_fully_fixed;
  }
  return rep;
}

}  // namespace reptile::stats
