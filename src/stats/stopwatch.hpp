#pragma once
// Wall-clock stopwatch and accumulating phase timers.

#include <chrono>
#include <cstdint>

namespace reptile::stats {

/// Simple wall-clock stopwatch. Pinned to a monotonic clock: the durations
/// feed the per-rank timing report and the obs stage histograms, which both
/// assume elapsed time never goes backwards (a system_clock NTP step would
/// produce negative stage seconds).
class Stopwatch {
 public:
  Stopwatch() : start_(clock::now()) {}

  void restart() { start_ = clock::now(); }

  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  static_assert(clock::is_steady,
                "Stopwatch must use a monotonic clock: durations feed "
                "reports/histograms that reject negative time");
  clock::time_point start_;
};

/// Accumulates time across many start/stop intervals (e.g. total time a
/// worker thread spent blocked on remote lookups).
class Accumulator {
 public:
  void start() { start_ = clock::now(); }
  void stop() {
    total_ += std::chrono::duration<double>(clock::now() - start_).count();
  }
  double seconds() const noexcept { return total_; }
  void reset() noexcept { total_ = 0; }

 private:
  using clock = std::chrono::steady_clock;
  static_assert(clock::is_steady,
                "Accumulator must use a monotonic clock (see Stopwatch)");
  clock::time_point start_{};
  double total_ = 0;
};

}  // namespace reptile::stats
