#pragma once
// Wall-clock stopwatch and accumulating phase timers.

#include <chrono>
#include <cstdint>

namespace reptile::stats {

/// Simple wall-clock stopwatch.
class Stopwatch {
 public:
  Stopwatch() : start_(clock::now()) {}

  void restart() { start_ = clock::now(); }

  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Accumulates time across many start/stop intervals (e.g. total time a
/// worker thread spent blocked on remote lookups).
class Accumulator {
 public:
  void start() { start_ = clock::now(); }
  void stop() {
    total_ += std::chrono::duration<double>(clock::now() - start_).count();
  }
  double seconds() const noexcept { return total_; }
  void reset() noexcept { total_ = 0; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_{};
  double total_ = 0;
};

}  // namespace reptile::stats
