#pragma once
// Aligned text tables for the benchmark harness output.
//
// Every bench binary prints the rows/series of one paper table or figure;
// TextTable renders them with aligned columns so paper-vs-measured
// comparisons are easy to eyeball (and greppable as CSV via to_csv()).

#include <iomanip>
#include <ostream>
#include <sstream>
#include <string>
#include <vector>

namespace reptile::stats {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header)
      : header_(std::move(header)) {}

  /// Starts a new row; subsequent cell() calls fill it left to right.
  TextTable& row() {
    rows_.emplace_back();
    return *this;
  }

  TextTable& cell(const std::string& value) {
    rows_.back().push_back(value);
    return *this;
  }

  TextTable& cell(const char* value) { return cell(std::string(value)); }

  template <class T>
  TextTable& cell(const T& value) {
    std::ostringstream os;
    os << value;
    return cell(os.str());
  }

  /// Numeric cell with fixed decimal places.
  TextTable& cell_fixed(double value, int places) {
    std::ostringstream os;
    os << std::fixed << std::setprecision(places) << value;
    return cell(os.str());
  }

  void print(std::ostream& os) const {
    std::vector<std::size_t> width(header_.size());
    for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
    for (const auto& r : rows_) {
      for (std::size_t c = 0; c < r.size() && c < width.size(); ++c) {
        width[c] = std::max(width[c], r[c].size());
      }
    }
    print_row(os, header_, width);
    std::string rule;
    for (std::size_t c = 0; c < width.size(); ++c) {
      rule += std::string(width[c], '-');
      if (c + 1 < width.size()) rule += "--";
    }
    os << rule << '\n';
    for (const auto& r : rows_) print_row(os, r, width);
  }

  std::string to_csv() const {
    std::ostringstream os;
    emit_csv_row(os, header_);
    for (const auto& r : rows_) emit_csv_row(os, r);
    return os.str();
  }

 private:
  static void print_row(std::ostream& os, const std::vector<std::string>& row,
                        const std::vector<std::size_t>& width) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(width[c])) << row[c];
      if (c + 1 < row.size()) os << "  ";
    }
    os << '\n';
  }

  static void emit_csv_row(std::ostream& os,
                           const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      os << row[c];
    }
    os << '\n';
  }

  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace reptile::stats
