#pragma once
// The unified report core shared by every pipeline driver.
//
// One run produces one report per rank (or one total, sequentially); before
// this header existed each driver hand-copied the same timing/counter fields
// into its own result struct (core::SequentialResult,
// parallel::RankReport, parallel::BaselineRankReport) and re-implemented the
// same max/total reductions over them. PhaseTimeline is the single struct
// all three now inherit: per-stage wall time, the peak construction
// footprint sampled per chunk, and the lookup/remote/service counters the
// paper's figures are built from. It is also the instrumentation seam the
// perfmodel calibration and the per-rank report tables read.
//
// The counter structs below (LookupStats, RemoteLookupStats, ServiceStats,
// SpectrumFootprint) historically lived in core/ and parallel/; they are
// pure counters with no dependencies, so they moved down here and the old
// namespaces re-export them under their original names.

#include <cstdint>
#include <string>
#include <vector>

namespace reptile::stats {

/// Lookup-side instrumentation. The paper's evaluation hinges on these
/// counters (remote tile lookups per rank, misses on non-existent tiles).
struct LookupStats {
  std::uint64_t kmer_lookups = 0;
  std::uint64_t kmer_misses = 0;  ///< lookups that found no entry
  std::uint64_t tile_lookups = 0;
  std::uint64_t tile_misses = 0;

  LookupStats& operator+=(const LookupStats& o) noexcept {
    kmer_lookups += o.kmer_lookups;
    kmer_misses += o.kmer_misses;
    tile_lookups += o.tile_lookups;
    tile_misses += o.tile_misses;
    return *this;
  }
};

/// Remote-side counters for one rank's correction phase.
struct RemoteLookupStats {
  std::uint64_t remote_kmer_lookups = 0;
  std::uint64_t remote_tile_lookups = 0;
  std::uint64_t remote_kmer_absent = 0;  ///< replies that said "not in spectrum"
  std::uint64_t remote_tile_absent = 0;
  std::uint64_t reads_table_hits = 0;    ///< resolved by the reads tables
  std::uint64_t group_lookups = 0;       ///< resolved by partial replication

  // batch_lookups extension counters. The dedup counts are kept per kind
  // because chunk dedup is per kind too (seen-sets per table): a numeric ID
  // appearing in both the k-mer and the tile request vectors of one chunk
  // is two distinct spectrum entries and must count in both tables — a
  // merged counter would hide a cross-kind accounting bug (regression-
  // tested in test_batch_lookup.cpp).
  std::uint64_t batch_requests = 0;      ///< vectored prefetch messages sent
  std::uint64_t batch_kmer_ids = 0;      ///< deduped k-mer IDs sent
  std::uint64_t batch_tile_ids = 0;      ///< deduped tile IDs sent
  std::uint64_t batch_kmer_ids_raw = 0;  ///< remote-needing k-mer IDs pre-dedup
  std::uint64_t batch_tile_ids_raw = 0;  ///< remote-needing tile IDs pre-dedup
  std::uint64_t prefetch_hits = 0;    ///< lookups answered by the chunk cache
  std::uint64_t prefetch_misses = 0;  ///< fell through the cache to scalar

  // filter_lookups extension counters.
  std::uint64_t filter_neg_hits = 0;  ///< remote lookups answered "absent"
                                      ///< locally by a peer filter
  std::uint64_t filter_false_positives = 0;  ///< filter said maybe, owner
                                             ///< replied absent (wasted trip)

  // Timeout/retry protocol counters (RetryPolicy; all 0 on fault-free runs
  // with retries disabled).
  std::uint64_t lookup_retries = 0;   ///< scalar requests retransmitted
  std::uint64_t lookup_timeouts = 0;  ///< reply waits that expired
  std::uint64_t degraded_lookups = 0; ///< scalar lookups given up after
                                      ///< max_retries (corrector skips)
  std::uint64_t stale_replies_suppressed = 0;  ///< seq-mismatched replies
  std::uint64_t malformed_replies = 0;  ///< undecodable replies discarded
  std::uint64_t batch_retries = 0;    ///< batch requests retransmitted
  std::uint64_t batch_abandoned = 0;  ///< batches given up (IDs go scalar)

  std::uint64_t remote_lookups() const noexcept {
    return remote_kmer_lookups + remote_tile_lookups;
  }

  /// Deduped IDs carried by vectored requests, both kinds.
  std::uint64_t batch_ids() const noexcept {
    return batch_kmer_ids + batch_tile_ids;
  }

  /// Remote-needing IDs before per-chunk dedup, both kinds.
  std::uint64_t batch_ids_raw() const noexcept {
    return batch_kmer_ids_raw + batch_tile_ids_raw;
  }

  /// Average IDs per vectored request (0 when none were sent).
  double avg_batch_size() const noexcept {
    return batch_requests == 0
               ? 0.0
               : static_cast<double>(batch_ids()) /
                     static_cast<double>(batch_requests);
  }

  /// Fraction of remote-needing IDs removed by per-chunk deduplication.
  double dedup_ratio() const noexcept {
    return batch_ids_raw() == 0
               ? 0.0
               : 1.0 - static_cast<double>(batch_ids()) /
                           static_cast<double>(batch_ids_raw());
  }

  /// Fraction of would-be remote lookups answered by the prefetch cache.
  double prefetch_hit_rate() const noexcept {
    const std::uint64_t total = prefetch_hits + prefetch_misses;
    return total == 0 ? 0.0
                      : static_cast<double>(prefetch_hits) /
                            static_cast<double>(total);
  }

  RemoteLookupStats& operator+=(const RemoteLookupStats& o) noexcept {
    remote_kmer_lookups += o.remote_kmer_lookups;
    remote_tile_lookups += o.remote_tile_lookups;
    remote_kmer_absent += o.remote_kmer_absent;
    remote_tile_absent += o.remote_tile_absent;
    reads_table_hits += o.reads_table_hits;
    group_lookups += o.group_lookups;
    batch_requests += o.batch_requests;
    batch_kmer_ids += o.batch_kmer_ids;
    batch_tile_ids += o.batch_tile_ids;
    batch_kmer_ids_raw += o.batch_kmer_ids_raw;
    batch_tile_ids_raw += o.batch_tile_ids_raw;
    prefetch_hits += o.prefetch_hits;
    prefetch_misses += o.prefetch_misses;
    filter_neg_hits += o.filter_neg_hits;
    filter_false_positives += o.filter_false_positives;
    lookup_retries += o.lookup_retries;
    lookup_timeouts += o.lookup_timeouts;
    degraded_lookups += o.degraded_lookups;
    stale_replies_suppressed += o.stale_replies_suppressed;
    malformed_replies += o.malformed_replies;
    batch_retries += o.batch_retries;
    batch_abandoned += o.batch_abandoned;
    return *this;
  }
};

/// Per-service counters (the communication thread), read after the join.
struct ServiceStats {
  std::uint64_t requests_served = 0;  ///< messages answered (scalar + batch)
  std::uint64_t kmer_requests = 0;    ///< scalar k-mer requests
  std::uint64_t tile_requests = 0;    ///< scalar tile requests
  std::uint64_t probe_calls = 0;  ///< tag probes (non-universal mode only)
  std::uint64_t absent_replies = 0;   ///< -1 answers, scalar or batched
  std::uint64_t batch_requests = 0;   ///< vectored requests answered
  std::uint64_t batch_ids_served = 0; ///< IDs looked up across all batches
  /// Requests dropped unanswered because the payload was malformed (wrong
  /// size / truncated by fault injection). The requester's timeout retry
  /// recovers; answering garbage would be worse than staying silent.
  std::uint64_t malformed_requests = 0;
  /// Stall-delayed filter-exchange copies drained (discarded) at the end of
  /// the serve loop. Always 0 on fault-free runs: the exchange completes
  /// before the service starts.
  std::uint64_t filter_stragglers = 0;
};

/// Sizes/memory snapshot of the spectrum tables (plus replicas). Sequential
/// and baseline runs fill only the hash_* entries and bytes.
struct SpectrumFootprint {
  std::size_t hash_kmer_entries = 0;
  std::size_t hash_tile_entries = 0;
  std::size_t reads_kmer_entries = 0;
  std::size_t reads_tile_entries = 0;
  std::size_t replica_kmer_entries = 0;
  std::size_t replica_tile_entries = 0;
  std::size_t filter_bytes = 0;  ///< peer membership filters (filter_lookups)
  std::size_t bytes = 0;  ///< total table memory (filters included)
};

/// One resource-ledger account's attribution for a run (obs-free mirror of
/// obs::LedgerSnapshot; the pipeline layer fills it when the ledger is
/// armed, so stats/ stays dependency-free).
struct LedgerAccountSample {
  const char* account = "";             ///< stable snake_case account name
  std::uint64_t build_end_bytes = 0;    ///< balance when construction ended
  std::uint64_t peak_bytes = 0;         ///< high-water mark over the run
};

/// One stage's sample in a run's timeline, recorded by the stage graph.
struct StageSample {
  std::string stage;               ///< stage name, e.g. "build_spectrum"
  double seconds = 0;              ///< stage wall time
  std::size_t spectrum_bytes = 0;  ///< spectrum footprint at stage end
};

/// The shared core of every per-rank (or sequential) report: what one rank
/// measured, independent of which driver ran it.
struct PhaseTimeline {
  std::uint64_t reads_processed = 0;
  std::uint64_t reads_changed = 0;
  std::uint64_t substitutions = 0;   ///< "errors corrected" in the figures
  std::uint64_t tiles_untrusted = 0;
  std::uint64_t tiles_fixed = 0;
  /// Tiles conservatively skipped because a backing lookup degraded (gave
  /// up after timeout retries). Always 0 on fault-free runs.
  std::uint64_t tiles_degraded = 0;
  /// Reads passed through UNCORRECTED because the job's correction-phase
  /// deadline expired (serve-mode SLO). The job is marked degraded; the
  /// reads are never miscorrected. Always 0 when no deadline is set.
  std::uint64_t reads_deadline_skipped = 0;
  std::uint64_t batches = 0;  ///< construction-phase chunks processed
  /// Non-empty work-queue grants received (the dynamic prior-art baseline
  /// only; 0 everywhere else).
  std::uint64_t work_grants = 0;

  LookupStats lookups;        ///< correction-phase lookups issued
  RemoteLookupStats remote;   ///< of which remote
  ServiceStats service;       ///< requests served for other ranks

  SpectrumFootprint footprint_after_construction;
  SpectrumFootprint footprint_after_correction;
  /// Peak construction-phase footprint (sampled after each chunk; the
  /// batch-reads heuristic exists to cap exactly this).
  std::size_t construction_peak_bytes = 0;

  double construct_seconds = 0;  ///< k-mer construction wall time
  double correct_seconds = 0;    ///< error-correction wall time
  double comm_seconds = 0;       ///< of which blocked on remote replies

  /// Per-stage wall times in graph order, recorded by pipeline::StageGraph.
  std::vector<StageSample> stages;

  /// Per-account resource-ledger attribution (empty unless the run armed
  /// the ledger, DistConfig::trace.ledger). The ledger is process-global,
  /// so in the in-process runtime every rank's rows carry the same values —
  /// the world-wide bill, analogous to an MPI job's per-node RSS.
  std::vector<LedgerAccountSample> ledger;
  std::uint64_t ledger_total_peak_bytes = 0;  ///< hwm of the live total
  std::uint64_t ledger_rss_peak_bytes = 0;    ///< OS cross-check (statm)

  /// The timeline slice of a derived report (assignment target for the
  /// stage graph's accumulated core).
  PhaseTimeline& timeline() noexcept { return *this; }
  const PhaseTimeline& timeline() const noexcept { return *this; }
};

/// Sum of one member over a range of report rows. `member` may point into
/// PhaseTimeline or into the derived report type itself, so the same helper
/// reduces shared fields (substitutions) and driver-specific ones
/// (chunks_granted).
template <class Range, class Row, class T>
T field_total(const Range& rows, T Row::* member) {
  T acc{};
  for (const auto& r : rows) acc += r.*member;
  return acc;
}

/// Maximum of one member over a range of report rows (zero when empty).
template <class Range, class Row, class T>
T field_max(const Range& rows, T Row::* member) {
  T best{};
  for (const auto& r : rows) {
    if (r.*member > best) best = r.*member;
  }
  return best;
}

}  // namespace reptile::stats
