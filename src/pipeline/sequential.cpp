// core::run_sequential as a stage-graph configuration: the paper pipeline
// with no communicator (LoadBalanceStage degenerates to bookkeeping,
// CorrectStage to one worker and no communication thread) over the local
// in-memory spectrum model.

#include "core/pipeline.hpp"

#include <utility>

#include "pipeline/context.hpp"
#include "pipeline/spectrum_model.hpp"
#include "pipeline/stages.hpp"

namespace reptile::core {

SequentialResult run_sequential(seq::ReadSource& source,
                                const CorrectorParams& params) {
  params.validate();

  pipeline::LocalSpectrumModel model(params);
  pipeline::RankContext ctx;
  ctx.bind(params);
  ctx.rank.model = &model;
  ctx.job.source = &source;
  pipeline::paper_graph().run(ctx);

  SequentialResult result;
  result.timeline() = std::move(ctx.job.report);
  result.corrected = std::move(ctx.job.corrected);
  result.kmer_entries = result.footprint_after_construction.hash_kmer_entries;
  result.tile_entries = result.footprint_after_construction.hash_tile_entries;
  result.spectrum_bytes = result.footprint_after_construction.bytes;
  return result;
}

SequentialResult run_sequential(const std::vector<seq::Read>& reads,
                                const CorrectorParams& params) {
  seq::VectorReadSource source(reads);
  return run_sequential(source, params);
}

}  // namespace reptile::core
