#pragma once
// SpectrumModel: where the k-mer/tile spectrum physically lives, behind the
// interface the stage graph drives.
//
// BuildSpectrumStage and CorrectStage contain the paper's control flow once;
// the three models supply what differs between the drivers:
//   LocalSpectrumModel      — sequential reference (core::LocalSpectrum);
//   DistSpectrumModel       — the paper's partitioned spectrum + lookup
//                             protocol (dist_model.hpp);
//   ReplicatedSpectrumModel — the prior-art full replica per rank
//                             (replicated_model.hpp).

#include <cstddef>
#include <memory>
#include <string_view>

#include "core/spectrum.hpp"
#include "seq/read.hpp"
#include "stats/phase_timeline.hpp"

namespace reptile::pipeline {

struct RankContext;

/// One correction worker's lookup surface over the model (Step IV). Workers
/// are slot-numbered; each handle is used by exactly one thread.
class WorkerHandle {
 public:
  virtual ~WorkerHandle() = default;

  /// The SpectrumView the corrector runs against.
  virtual core::SpectrumView& view() = 0;

  /// batch_lookups hook: fetch the chunk's remote-needing IDs ahead of
  /// correction. No-op for local models.
  virtual void prefetch_chunk(const seq::ReadBatch& batch) {
    (void)batch;
  }

  /// Folds this worker's lookup counters into its per-worker accumulator
  /// after the chunk loop (CorrectStage then merges accumulators: counters
  /// add, comm_seconds takes the maximum across workers).
  virtual void harvest(stats::PhaseTimeline& acc) { (void)acc; }
};

class SpectrumModel {
 public:
  virtual ~SpectrumModel() = default;

  // --- Steps II-III: construction (driven by BuildSpectrumStage) --------

  /// Step II for one read.
  virtual void add_read(std::string_view bases) = 0;

  /// True when construction must run the chunk-synchronous exchange loop
  /// to the global maximum batch count (the batch_reads heuristic; every
  /// rank must join every collective exchange).
  virtual bool chunked_exchange() const { return false; }

  /// Step III exchange: per chunk in batch mode, once after the read loop
  /// otherwise. No-op for local models.
  virtual void exchange_chunk() {}

  /// End of Step III: prune, replication heuristics, and (distributed) the
  /// construction barrier.
  virtual void finalize_construction() = 0;

  /// Current total table bytes — sampled per chunk for the peak footprint
  /// the batch_reads heuristic exists to cap.
  virtual std::size_t footprint_bytes() const = 0;

  /// Snapshot into report.footprint_after_construction (and fold it into
  /// the construction peak).
  virtual void record_construction_footprint(stats::PhaseTimeline& report) = 0;

  /// Snapshot into report.footprint_after_correction.
  virtual void record_correction_footprint(stats::PhaseTimeline& report) = 0;

  // --- Step IV: correction (driven by CorrectStage) ---------------------

  /// Serve-mode seam: drop every piece of JOB-lifetime state the model
  /// accumulated while correcting (remote reply caches, per-job counters)
  /// so the next job's lookups and report cannot observe the previous
  /// job's. The spectrum tables themselves are RANK-lifetime and survive.
  /// Collective where overridden (all ranks must call it together).
  virtual void reset_for_job() {}

  /// Runs before any Step IV thread starts (distributed: Comm::reset_done
  /// and service construction).
  virtual void prepare_correction(RankContext& ctx) { (void)ctx; }

  /// True when a communication thread must run alongside the workers.
  virtual bool needs_service() const { return false; }

  /// The communication thread's body: serve lookups until every rank is
  /// done. Called only when needs_service().
  virtual void serve() {}

  /// This rank's completion announcement (distributed: Comm::signal_done).
  /// CorrectStage guarantees exactly one call, even on exception unwind.
  virtual void announce_done() {}

  /// Service counters into report.service, after the service join.
  virtual void harvest_service(stats::PhaseTimeline& report) { (void)report; }

  /// Lookup handle for worker `slot` (0-based; slot 0 runs on the rank's
  /// main thread).
  virtual std::unique_ptr<WorkerHandle> make_worker(const RankContext& ctx,
                                                    int slot) = 0;
};

/// The sequential reference model: both spectra in one in-memory
/// core::LocalSpectrum, no communication anywhere.
class LocalSpectrumModel final : public SpectrumModel {
 public:
  explicit LocalSpectrumModel(const core::CorrectorParams& params)
      : spectrum_(params) {}

  void add_read(std::string_view bases) override { spectrum_.add_read(bases); }
  void finalize_construction() override { spectrum_.prune(); }

  std::size_t footprint_bytes() const override {
    return spectrum_.memory_bytes();
  }

  void record_construction_footprint(stats::PhaseTimeline& report) override {
    fill_footprint(report.footprint_after_construction);
    if (report.footprint_after_construction.bytes >
        report.construction_peak_bytes) {
      report.construction_peak_bytes =
          report.footprint_after_construction.bytes;
    }
  }

  void record_correction_footprint(stats::PhaseTimeline& report) override {
    fill_footprint(report.footprint_after_correction);
  }

  std::unique_ptr<WorkerHandle> make_worker(const RankContext& ctx,
                                            int slot) override;

  core::LocalSpectrum& spectrum() noexcept { return spectrum_; }

 private:
  /// The single-worker handle: lookups are the spectrum's counter delta
  /// since the handle was made (construction-phase counters excluded).
  class Handle final : public WorkerHandle {
   public:
    explicit Handle(core::LocalSpectrum& spectrum)
        : spectrum_(&spectrum), before_(spectrum.stats()) {}

    core::SpectrumView& view() override { return *spectrum_; }

    void harvest(stats::PhaseTimeline& acc) override {
      core::LookupStats delta = spectrum_->stats();
      delta.kmer_lookups -= before_.kmer_lookups;
      delta.kmer_misses -= before_.kmer_misses;
      delta.tile_lookups -= before_.tile_lookups;
      delta.tile_misses -= before_.tile_misses;
      acc.lookups += delta;
    }

   private:
    core::LocalSpectrum* spectrum_;
    core::LookupStats before_;
  };

  void fill_footprint(stats::SpectrumFootprint& fp) const {
    fp.hash_kmer_entries = spectrum_.kmer_entries();
    fp.hash_tile_entries = spectrum_.tile_entries();
    fp.bytes = spectrum_.memory_bytes();
  }

  core::LocalSpectrum spectrum_;
};

inline std::unique_ptr<WorkerHandle> LocalSpectrumModel::make_worker(
    const RankContext& ctx, int slot) {
  (void)ctx;
  (void)slot;
  return std::make_unique<Handle>(spectrum_);
}

}  // namespace reptile::pipeline
