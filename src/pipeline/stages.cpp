#include "pipeline/stages.hpp"

#include <algorithm>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <type_traits>
#include <utility>

#include "core/corrector.hpp"
#include "obs/ledger.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "parallel/rebalance.hpp"
#include "rtm/check/check.hpp"
#include "rtm/comm.hpp"
#include "rtm/thread_group.hpp"
#include "seq/chunk_stream.hpp"
#include "stats/stopwatch.hpp"

namespace reptile::pipeline {

namespace {

/// Folds the process-global ledger into the report's per-account rows
/// (created on first call). `at_build_end` additionally stamps the
/// end-of-construction balances — the per-phase attribution the scaling
/// bench reports. No-op while the ledger is disarmed, so disabled runs
/// carry empty rows.
void sample_ledger(stats::PhaseTimeline& report, bool at_build_end) {
  obs::ResourceLedger& ledger = obs::ResourceLedger::global();
  if (!ledger.enabled()) return;
  const obs::LedgerSnapshot snap = ledger.snapshot();
  if (report.ledger.empty()) {
    report.ledger.resize(obs::kLedgerAccounts);
    for (std::size_t i = 0; i < obs::kLedgerAccounts; ++i) {
      report.ledger[i].account =
          obs::ledger_account_name(static_cast<obs::LedgerAccount>(i));
    }
  }
  for (std::size_t i = 0; i < obs::kLedgerAccounts; ++i) {
    if (at_build_end) {
      report.ledger[i].build_end_bytes = snap.accounts[i].bytes;
    }
    report.ledger[i].peak_bytes = snap.accounts[i].peak_bytes;
  }
  report.ledger_total_peak_bytes = snap.total_peak_bytes;
  report.ledger_rss_peak_bytes = snap.rss_peak_bytes;
}

}  // namespace

void StageGraph::run(RankContext& ctx) {
  for (const auto& stage : stages_) {
    const std::string stage_name(stage->name());
    stats::Stopwatch clock;
    {
      obs::SpanScope span("stage", obs::intern("stage:" + stage_name));
      // Every stage span is attributed to the job it ran for, so merged
      // shards of a multi-job serve run stay per-job attributable
      // (trace_merge --check validates the arg is present).
      span.arg("job", ctx.job.job_id);
      stage->run(ctx);
    }
    const double seconds = clock.seconds();
    ctx.job.report.stages.push_back(
        {stage_name, seconds,
         ctx.model() == nullptr ? 0 : ctx.model()->footprint_bytes()});
    if (obs::Histogram* h = obs::Registry::global().histogram(
            "reptile_stage_us_" + stage_name, ctx.rank_id())) {
      h->record(static_cast<std::uint64_t>(seconds * 1e6));
    }
  }
}

void LoadBalanceStage::run(RankContext& ctx) {
  // With balancing on, the rank's working set becomes the reads it owns;
  // without it, the raw Step I partition is streamed directly (never
  // materialized — the paper re-reads the file to keep the footprint low).
  if (ctx.comm() != nullptr && ctx.job.heuristics.load_balance) {
    std::vector<seq::Read> mine;
    mine.reserve(ctx.job.source->size());
    seq::for_each_chunk(*ctx.job.source, ctx.job.params.chunk_size,
                        [&mine](seq::ReadBatch& batch) {
                          mine.insert(mine.end(), batch.begin(), batch.end());
                        });
    ctx.job.balanced = std::make_unique<seq::OwningReadSource>(
        parallel::rebalance_reads(*ctx.comm(), mine));
    ctx.job.source = ctx.job.balanced.get();
  }
  ctx.job.report.reads_processed = ctx.job.source->size();
}

void BuildSpectrumStage::run(RankContext& ctx) {
  stats::Stopwatch clock;
  SpectrumModel& model = *ctx.model();
  seq::ChunkStream stream(*ctx.job.source, ctx.job.params.chunk_size);
  seq::ReadBatch batch;
  auto sample_peak = [&ctx, &model] {
    ctx.job.report.construction_peak_bytes = std::max(
        ctx.job.report.construction_peak_bytes, model.footprint_bytes());
  };
  if (model.chunked_exchange()) {
    // All ranks must join every collective exchange, so run to the global
    // maximum batch count (the paper's MPI_Reduce over batch counts).
    const std::uint64_t max_batches = ctx.comm()->allreduce_max(
        static_cast<std::uint64_t>(stream.chunk_count()));
    for (std::uint64_t b = 0; b < max_batches; ++b) {
      obs::SpanScope span("chunk", "chunk:build");
      span.arg("chunk", b);
      stream.next(batch);  // possibly empty near the end
      span.arg("reads", batch.size());
      for (const seq::Read& r : batch) model.add_read(r.bases);
      model.exchange_chunk();
      ++ctx.job.report.batches;
      sample_peak();
    }
  } else {
    while (stream.next(batch)) {
      obs::SpanScope span("chunk", "chunk:build");
      span.arg("chunk", ctx.job.report.batches);
      span.arg("reads", batch.size());
      for (const seq::Read& r : batch) model.add_read(r.bases);
      ++ctx.job.report.batches;
      sample_peak();
    }
    model.exchange_chunk();
    sample_peak();
  }
  model.finalize_construction();
  ctx.job.report.construct_seconds = clock.seconds();
  model.record_construction_footprint(ctx.job.report);
  sample_ledger(ctx.job.report, /*at_build_end=*/true);
}

void CorrectStage::run(RankContext& ctx) {
  SpectrumModel& model = *ctx.model();
  model.prepare_correction(ctx);

  // The completion announcement (distributed: Comm::signal_done) must run
  // exactly once before the communication thread is joined — the service
  // loops until every rank is done — including when a worker throws below
  // (a check::ProtocolError at a send site, a check::DeadlockError out of a
  // blocked receive). Under a deadlock abort the service exits on the
  // checker's abort flag, so the join completes.
  rtm::ScopedThreadGroup service_group([&model] { model.announce_done(); });
  if (model.needs_service()) {
    service_group.spawn([&model] { model.serve(); });
  }

  stats::Stopwatch clock;
  const int workers = std::max(1, ctx.rank.worker_threads);
  const double deadline = ctx.job.deadline_seconds;
  seq::ChunkStream stream(*ctx.job.source, ctx.job.params.chunk_size);
  std::mutex stream_mutex;
  std::vector<std::vector<seq::Read>> per_worker(
      static_cast<std::size_t>(workers));
  std::vector<stats::PhaseTimeline> worker_acc(
      static_cast<std::size_t>(workers));

  auto worker = [&](int slot) {
    // Register the thread's role with the checker; the communication
    // thread is deliberately unscoped (it is the peer the roles talk to).
    std::optional<rtm::check::ThreadScope> scope;
    if (ctx.comm() != nullptr) {
      if (rtm::check::RunChecker* check = ctx.comm()->world().checker()) {
        scope.emplace(*check, ctx.rank_id(), rtm::check::ThreadRole::kWorker);
      }
    }
    if (slot != 0) {
      // Slot 0 runs inline on the rank thread, which already carries the
      // rank label; spawned workers register their own.
      obs::Tracer::instance().set_thread(
          ctx.rank_id(), ("worker" + std::to_string(slot)).c_str());
    }
    const auto handle = model.make_worker(ctx, slot);
    core::TileCorrector corrector(ctx.job.params);
    stats::PhaseTimeline& acc = worker_acc[static_cast<std::size_t>(slot)];
    auto& corrected = per_worker[static_cast<std::size_t>(slot)];
    seq::ReadBatch local_batch;
    while (true) {
      {
        std::lock_guard lock(stream_mutex);
        if (!stream.next(local_batch)) break;
      }
      // Deadline blown (serve-mode SLO, checked per chunk): stop spending
      // lookups and pass the remaining reads through UNCHANGED. The
      // degraded-evidence contract of the retry protocol extends here —
      // the corrector may under-correct on a deadline, never miscorrect.
      if (deadline > 0.0 && clock.seconds() > deadline) {
        acc.reads_deadline_skipped +=
            static_cast<std::uint64_t>(local_batch.size());
        for (seq::Read& r : local_batch) corrected.push_back(std::move(r));
        continue;
      }
      obs::SpanScope span("chunk", "chunk:correct");
      span.arg("reads", local_batch.size());
      handle->prefetch_chunk(local_batch);
      for (seq::Read& r : local_batch) {
        const core::ReadCorrection rc = corrector.correct(r, handle->view());
        if (rc.changed()) ++acc.reads_changed;
        acc.substitutions += static_cast<std::uint64_t>(rc.substitutions);
        acc.tiles_untrusted += static_cast<std::uint64_t>(rc.tiles_untrusted);
        acc.tiles_fixed += static_cast<std::uint64_t>(rc.tiles_fixed);
        acc.tiles_degraded += static_cast<std::uint64_t>(rc.tiles_degraded);
        corrected.push_back(std::move(r));
      }
    }
    handle->harvest(acc);
  };

  {
    // Workers run with errors captured, not thrown: an escaping exception
    // on a std::thread would terminate the process, and the sibling threads
    // must be joined before the stage rethrows.
    rtm::ScopedThreadGroup worker_group;
    for (int slot = 1; slot < workers; ++slot) {
      worker_group.spawn([&worker, slot] { worker(slot); });
    }
    worker_group.run_inline([&worker] { worker(0); });
    worker_group.join_and_rethrow();
  }
  service_group.join_and_rethrow();
  ctx.job.report.correct_seconds = clock.seconds();

  ctx.job.corrected.reserve(ctx.job.corrected.size() + ctx.job.source->size());
  for (auto& part : per_worker) {
    for (auto& r : part) ctx.job.corrected.push_back(std::move(r));
  }
  for (const stats::PhaseTimeline& acc : worker_acc) {
    ctx.job.report.reads_changed += acc.reads_changed;
    ctx.job.report.substitutions += acc.substitutions;
    ctx.job.report.tiles_untrusted += acc.tiles_untrusted;
    ctx.job.report.tiles_fixed += acc.tiles_fixed;
    ctx.job.report.tiles_degraded += acc.tiles_degraded;
    ctx.job.report.reads_deadline_skipped += acc.reads_deadline_skipped;
    ctx.job.report.lookups += acc.lookups;
    ctx.job.report.remote += acc.remote;
    // The per-rank communication time is the wall time any worker spent
    // blocked; with concurrent workers we report the maximum.
    ctx.job.report.comm_seconds =
        std::max(ctx.job.report.comm_seconds, acc.comm_seconds);
  }
  model.harvest_service(ctx.job.report);
  model.record_correction_footprint(ctx.job.report);
  sample_ledger(ctx.job.report, /*at_build_end=*/false);
  if (ctx.comm() != nullptr) ctx.comm()->barrier();
}

namespace {

// Work-queue protocol tags (disjoint from the lookup protocol's).
constexpr int kTagWorkRequest = 31;
constexpr int kTagWorkGrant = 32;

/// One grant from the master: the half-open read-index range [begin, end).
/// begin == end means the queue is exhausted.
struct WorkGrant {
  std::uint64_t begin = 0;
  std::uint64_t end = 0;
};
static_assert(std::is_trivially_copyable_v<WorkGrant>);

/// The global master (a thread on rank 0): answers work requests with the
/// next chunk of read indices until the queue is empty, then hands every
/// rank one empty grant.
void run_master(rtm::Comm& comm, std::uint64_t total_reads,
                std::uint64_t chunk) {
  std::uint64_t next = 0;
  int retired = 0;
  while (retired < comm.size()) {
    const rtm::Message request = comm.recv(rtm::kAnySource, kTagWorkRequest);
    WorkGrant grant;
    if (next < total_reads) {
      grant.begin = next;
      grant.end = std::min(total_reads, next + chunk);
      next = grant.end;
    } else {
      ++retired;  // empty grant retires the requesting worker
    }
    comm.send_value(request.source, kTagWorkGrant, grant);
  }
}

}  // namespace

void WorkQueueCorrectStage::run(RankContext& ctx) {
  rtm::Comm& comm = *ctx.comm();
  rtm::ScopedThreadGroup master_group;
  if (comm.rank() == 0) {
    const std::uint64_t total = all_reads_->size();
    const std::uint64_t chunk = work_chunk_;
    master_group.spawn(
        [&comm, total, chunk] { run_master(comm, total, chunk); });
  }

  stats::Stopwatch clock;
  const auto handle = ctx.model()->make_worker(ctx, 0);
  core::TileCorrector corrector(ctx.job.params);
  while (true) {
    comm.send_value(0, kTagWorkRequest, std::uint32_t{0});
    const WorkGrant grant =
        comm.recv(0, kTagWorkGrant).as_value<WorkGrant>();
    if (grant.begin == grant.end) break;
    ++ctx.job.report.work_grants;
    obs::SpanScope span("chunk", "chunk:correct");
    span.arg("reads", grant.end - grant.begin);
    for (std::uint64_t i = grant.begin; i < grant.end; ++i) {
      seq::Read read = (*all_reads_)[i];
      const core::ReadCorrection rc = corrector.correct(read, handle->view());
      if (rc.changed()) ++ctx.job.report.reads_changed;
      ctx.job.report.substitutions +=
          static_cast<std::uint64_t>(rc.substitutions);
      ctx.job.report.tiles_untrusted +=
          static_cast<std::uint64_t>(rc.tiles_untrusted);
      ctx.job.report.tiles_fixed += static_cast<std::uint64_t>(rc.tiles_fixed);
      ++ctx.job.report.reads_processed;
      ctx.job.corrected.push_back(std::move(read));
    }
  }
  master_group.join_and_rethrow();
  ctx.job.report.correct_seconds = clock.seconds();
  handle->harvest(ctx.job.report);
  ctx.model()->record_correction_footprint(ctx.job.report);
  sample_ledger(ctx.job.report, /*at_build_end=*/false);
  comm.barrier();
}

std::vector<seq::Read> MergeStage::run(
    std::vector<std::vector<seq::Read>> per_rank) {
  std::vector<seq::Read> merged;
  std::size_t total = 0;
  for (const auto& part : per_rank) total += part.size();
  merged.reserve(total);
  for (auto& part : per_rank) {
    for (auto& r : part) merged.push_back(std::move(r));
  }
  std::sort(merged.begin(), merged.end(),
            [](const seq::Read& a, const seq::Read& b) {
              return a.number < b.number;
            });
  return merged;
}

StageGraph paper_graph() {
  StageGraph graph;
  graph.add(std::make_unique<LoadBalanceStage>())
      .add(std::make_unique<BuildSpectrumStage>())
      .add(std::make_unique<CorrectStage>());
  return graph;
}

StageGraph correction_graph() {
  StageGraph graph;
  graph.add(std::make_unique<LoadBalanceStage>())
      .add(std::make_unique<CorrectStage>());
  return graph;
}

StageGraph baseline_graph(const std::vector<seq::Read>& all_reads,
                          std::size_t work_chunk) {
  StageGraph graph;
  graph.add(std::make_unique<BuildSpectrumStage>())
      .add(std::make_unique<WorkQueueCorrectStage>(all_reads, work_chunk));
  return graph;
}

}  // namespace reptile::pipeline
