#pragma once
// The paper's partitioned spectrum behind the SpectrumModel interface:
// DistSpectrum construction (Steps II-III with every heuristic), the
// LookupService communication thread, and RemoteSpectrumView worker lookups
// (Step IV).

#include <memory>
#include <optional>
#include <string_view>

#include "parallel/dist_spectrum.hpp"
#include "parallel/lookup_service.hpp"
#include "pipeline/spectrum_model.hpp"
#include "rtm/comm.hpp"

namespace reptile::pipeline {

class DistSpectrumModel final : public SpectrumModel {
 public:
  DistSpectrumModel(const core::CorrectorParams& params,
                    const parallel::Heuristics& heur, rtm::Comm& comm)
      : comm_(&comm), spectrum_(params, heur, comm) {}

  void add_read(std::string_view bases) override { spectrum_.add_read(bases); }

  bool chunked_exchange() const override {
    return spectrum_.heuristics().batch_reads;
  }

  void exchange_chunk() override { spectrum_.exchange_to_owners(); }

  void finalize_construction() override;

  std::size_t footprint_bytes() const override {
    return spectrum_.footprint().bytes;
  }

  void record_construction_footprint(stats::PhaseTimeline& report) override;

  void record_correction_footprint(stats::PhaseTimeline& report) override {
    report.footprint_after_correction = spectrum_.footprint();
  }

  /// Collective: erases the add_remote reply caches from the reads tables
  /// (the only job-lifetime residue inside DistSpectrum) so job N's
  /// lookup counters cannot be perturbed by job N-1's cached replies.
  void reset_for_job() override;

  void prepare_correction(RankContext& ctx) override;

  /// A rank needs the communication thread unless it runs alone or both
  /// spectra are replicated ("allgather both": no lookup ever leaves the
  /// rank, so nobody would message it).
  bool needs_service() const override {
    return comm_->size() > 1 && !spectrum_.heuristics().fully_replicated();
  }

  void serve() override { service_->serve(); }
  void announce_done() override { comm_->signal_done(); }

  void harvest_service(stats::PhaseTimeline& report) override {
    if (service_.has_value()) report.service = service_->stats();
  }

  std::unique_ptr<WorkerHandle> make_worker(const RankContext& ctx,
                                            int slot) override;

  parallel::DistSpectrum& spectrum() noexcept { return spectrum_; }

 private:
  class Handle;

  rtm::Comm* comm_;
  parallel::DistSpectrum spectrum_;
  /// Constructed by prepare_correction (after Comm::reset_done) whether or
  /// not the service thread runs — its zeroed stats still feed the report.
  std::optional<parallel::LookupService> service_;
};

}  // namespace reptile::pipeline
