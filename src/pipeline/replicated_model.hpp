#pragma once
// The prior-art spectrum model (paper Section II-B): every rank holds the
// full replicated spectrum, built by allgathering each rank's local counts
// (Shah et al. 2012 / Jammula et al. 2015). Correction needs no spectrum
// communication at all — the very memory/scalability trade the paper's
// partitioned approach removes.

#include <memory>
#include <string_view>
#include <vector>

#include "core/spectrum.hpp"
#include "hash/count_table.hpp"
#include "pipeline/spectrum_model.hpp"
#include "rtm/comm.hpp"
#include "seq/kmer.hpp"
#include "seq/tile.hpp"

namespace reptile::pipeline {

/// Full spectrum replica with canonical-aware lookups.
class ReplicatedSpectrum final : public core::SpectrumView {
 public:
  explicit ReplicatedSpectrum(const core::CorrectorParams& params)
      : extractor_(params), params_(params) {}

  /// Step II over this rank's slice: local (canonical) counts.
  void add_read(std::string_view bases);

  /// Replication: allgather every rank's local counts and merge — after
  /// this, each rank holds the full global spectrum.
  void replicate(rtm::Comm& comm);

  void prune() {
    kmers_.prune_below(params_.kmer_threshold);
    tiles_.prune_below(params_.tile_threshold);
  }

  std::uint32_t kmer_count(seq::kmer_id_t id) override;
  std::uint32_t tile_count(seq::tile_id_t id) override;
  const core::LookupStats& stats() const override { return stats_; }

  std::size_t kmer_entries() const noexcept { return kmers_.size(); }
  std::size_t tile_entries() const noexcept { return tiles_.size(); }
  std::size_t memory_bytes() const noexcept {
    return kmers_.memory_bytes() + tiles_.memory_bytes();
  }

 private:
  core::SpectrumExtractor extractor_;
  core::CorrectorParams params_;
  hash::CountTable<> kmers_;
  hash::CountTable<> tiles_;
  core::LookupStats stats_;
  std::vector<seq::kmer_id_t> kmer_scratch_;
  std::vector<seq::tile_id_t> tile_scratch_;
};

class ReplicatedSpectrumModel final : public SpectrumModel {
 public:
  ReplicatedSpectrumModel(const core::CorrectorParams& params, rtm::Comm& comm)
      : comm_(&comm), spectrum_(params) {}

  void add_read(std::string_view bases) override { spectrum_.add_read(bases); }

  void finalize_construction() override {
    spectrum_.replicate(*comm_);
    spectrum_.prune();
  }

  std::size_t footprint_bytes() const override {
    return spectrum_.memory_bytes();
  }

  void record_construction_footprint(stats::PhaseTimeline& report) override;
  void record_correction_footprint(stats::PhaseTimeline& report) override;

  std::unique_ptr<WorkerHandle> make_worker(const RankContext& ctx,
                                            int slot) override;

 private:
  void fill_footprint(stats::SpectrumFootprint& fp) const;

  rtm::Comm* comm_;
  ReplicatedSpectrum spectrum_;
};

}  // namespace reptile::pipeline
