// parallel::CorrectionServer: the resident correction service over the
// stage graph (DESIGN.md §13).
//
// The rank-vs-job split of pipeline/context.hpp is what makes this file
// small: construction runs LoadBalance -> BuildSpectrum once per rank
// (identical to the front half of run_distributed), and each streamed job
// is just "cycle the JobState, run correction_graph()". Everything else
// here is the control plane: the admission queue, the job table, the
// announce/complete wire exchange, and per-job observability.

#include "parallel/serve.hpp"

#include <atomic>
#include <cstddef>
#include <exception>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <thread>
#include <unordered_map>
#include <utility>

#include "obs/ledger.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "parallel/admission.hpp"
#include "parallel/protocol.hpp"
#include "pipeline/context.hpp"
#include "pipeline/dist_model.hpp"
#include "pipeline/stages.hpp"
#include "rtm/comm.hpp"
#include "seq/fasta_io.hpp"
#include "stats/stopwatch.hpp"

namespace reptile::parallel {

struct CorrectionServer::Impl {
  /// One admitted job: the input, the effective (build + overrides) config
  /// computed at submit time, and the output slots the ranks fill. Shared
  /// between the submitter (holds the future), the queue, and the ranks.
  struct PendingJob {
    std::uint64_t id = 0;

    std::vector<seq::Read> reads;
    std::filesystem::path fasta;
    std::filesystem::path qual;

    core::CorrectorParams params;
    Heuristics heuristics;
    RetryPolicy retry;
    double deadline_seconds = 0.0;

    std::vector<std::vector<seq::Read>> corrected_per_rank;
    std::vector<RankReport> reports;
    std::promise<JobReport> promise;
  };

  std::vector<seq::Read> build_reads;
  DistConfig config;
  AdmissionQueue<std::shared_ptr<PendingJob>> queue;

  /// Announced-by-id job lookup for the peer ranks. A job is inserted
  /// before it is enqueued and erased after its future is fulfilled, so a
  /// peer that just received an announce always finds the job here.
  std::mutex jobs_mutex;
  std::unordered_map<std::uint64_t, std::shared_ptr<PendingJob>> jobs;
  std::atomic<std::uint64_t> next_job_id{1};

  std::atomic<std::uint64_t> jobs_completed{0};
  std::atomic<std::uint64_t> jobs_degraded{0};
  std::atomic<std::uint64_t> jobs_rejected{0};
  std::atomic<std::uint64_t> spectrum_builds{0};
  std::vector<stats::PhaseTimeline> build_timelines;

  /// Fulfilled (once) when every rank finished building the spectrum — or
  /// with the exception that killed the world; the constructor blocks on it.
  std::promise<void> ready_promise;
  std::once_flag ready_once;

  std::thread world_thread;
  std::mutex shutdown_mutex;

  Impl(std::vector<seq::Read> reads, DistConfig cfg, std::size_t depth)
      : build_reads(std::move(reads)),
        config(std::move(cfg)),
        queue(depth),
        build_timelines(static_cast<std::size_t>(config.ranks)) {}

  ~Impl() { shutdown(); }

  void start() {
    validate_dist_config(config);
    // One-shot runs tolerate lossy chaos because every lookup can be
    // retransmitted; the serve control messages (announce/complete) have no
    // retry path — a dropped announce would wedge the server — so serve
    // mode only accepts lossless (stall/duplicate) plans.
    if (config.run_options.chaos.lossy()) {
      throw std::invalid_argument(
          "serve mode requires a lossless chaos plan: job announce/complete "
          "control messages are not retransmitted (stalls and duplicates "
          "are fine, drops and truncation are not)");
    }
    // Mirrors run_distributed's begin_observability: applied before ranks
    // start, including the default-disabled state.
    obs::Tracer::instance().configure(config.trace);
    obs::Registry::global().configure(config.trace.metrics);
    obs::ResourceLedger::global().configure(config.trace.ledger);
    world_thread = std::thread([this] { world_loop(); });
  }

  void world_loop() {
    try {
      auto world = rtm::run_world(
          config.topology(), [this](rtm::Comm& comm) { rank_body(comm); },
          resolve_run_options(config));
      if (obs::ResourceLedger::global().enabled()) {
        obs::publish_ledger_metrics(obs::ResourceLedger::global().snapshot());
      }
      world.reset();  // joins chaos/watchdog; trace rings now quiescent
      if (config.trace.enabled && !config.trace.path.empty()) {
        obs::Tracer::instance().write_shards(config.trace.path, config.ranks);
      }
    } catch (...) {
      fail(std::current_exception());
      return;
    }
    // Normal exit: the queue drained before the shutdown announce, so no
    // job can still be pending — but if one ever is, failing its promise
    // beats leaving a submitter blocked forever.
    fail(std::make_exception_ptr(
        std::runtime_error("correction server shut down")));
  }

  /// Terminal-path cleanup: unblock the constructor (if still waiting) and
  /// every submitter holding an unfulfilled future, then refuse admission.
  void fail(std::exception_ptr error) {
    std::call_once(ready_once, [&] { ready_promise.set_exception(error); });
    queue.close();
    std::lock_guard lock(jobs_mutex);
    for (auto& [id, job] : jobs) {
      job->promise.set_exception(error);
    }
    jobs.clear();
  }

  void rank_body(rtm::Comm& comm) {
    const int rank = comm.rank();
    const int np = comm.size();

    pipeline::DistSpectrumModel model(config.params, config.heuristics, comm);
    pipeline::RankContext ctx;
    ctx.bind(config.params, config.heuristics);
    ctx.rank.worker_threads = config.worker_threads;
    ctx.rank.comm = &comm;
    ctx.rank.model = &model;
    ctx.job.retry = config.retry;

    // Rank-lifetime phase: Steps I-III over the build dataset, exactly the
    // front half of run_distributed. Runs once; every later job reuses the
    // spectrum it built.
    {
      const std::size_t begin = build_reads.size() *
                                static_cast<std::size_t>(rank) /
                                static_cast<std::size_t>(np);
      const std::size_t end = build_reads.size() *
                              static_cast<std::size_t>(rank + 1) /
                              static_cast<std::size_t>(np);
      seq::SliceReadSource source(build_reads, begin, end);
      ctx.job.source = &source;
      pipeline::StageGraph build;
      build.add(std::make_unique<pipeline::LoadBalanceStage>())
          .add(std::make_unique<pipeline::BuildSpectrumStage>());
      build.run(ctx);
      spectrum_builds.fetch_add(1, std::memory_order_relaxed);
      if (obs::Counter* c =
              obs::Registry::global().counter("reptile_spectrum_builds", rank)) {
        c->add(1);
      }
      build_timelines[static_cast<std::size_t>(rank)] =
          std::move(ctx.job.report);
    }

    // All ranks hold a complete shard before the constructor returns (and
    // before any announce can race ahead of a slow builder).
    comm.barrier();
    if (rank == 0) {
      std::call_once(ready_once, [this] { ready_promise.set_value(); });
    }

    // Job loop. Rank 0 owns the queue and drives the control plane; peers
    // block on announces. A CV-parked rank 0 counts as running for the
    // rtm-check watchdog, so an idle server is never flagged as deadlocked.
    while (true) {
      std::shared_ptr<PendingJob> job;
      if (rank == 0) {
        std::optional<std::shared_ptr<PendingJob>> next = queue.pop();
        JobAnnounce announce;
        announce.job_id = next ? (*next)->id : 0;
        announce.op = static_cast<std::uint32_t>(next ? JobOp::kRun
                                                      : JobOp::kShutdown);
        for (int dst = 1; dst < np; ++dst) {
          comm.send_value(dst, kTagJobAnnounce, announce);
        }
        if (!next) break;
        job = std::move(*next);
      } else {
        const auto announce =
            comm.recv(0, kTagJobAnnounce).as_value<JobAnnounce>();
        if (announce.op == static_cast<std::uint32_t>(JobOp::kShutdown)) {
          break;
        }
        std::lock_guard lock(jobs_mutex);
        job = jobs.at(announce.job_id);
      }
      serve_job(ctx, model, comm, *job);
    }
  }

  void serve_job(pipeline::RankContext& ctx, pipeline::DistSpectrumModel& model,
                 rtm::Comm& comm, PendingJob& job) {
    const int rank = comm.rank();
    const int np = comm.size();
    stats::Stopwatch clock;
    const std::uint64_t ledger_before =
        obs::ResourceLedger::global().total_bytes();

    // Cycle the job-lifetime state; the rank-lifetime spectrum, filters and
    // mailboxes carry over untouched from the build phase.
    ctx.job.reset_for_job(job.id);
    ctx.job.params = job.params;
    ctx.job.heuristics = job.heuristics;
    ctx.job.retry = job.retry;
    ctx.job.deadline_seconds = job.deadline_seconds;
    model.reset_for_job();

    std::optional<seq::SliceReadSource> memory_source;
    std::optional<seq::PartitionedReadSource> file_source;
    if (job.fasta.empty()) {
      const std::size_t begin = job.reads.size() *
                                static_cast<std::size_t>(rank) /
                                static_cast<std::size_t>(np);
      const std::size_t end = job.reads.size() *
                              static_cast<std::size_t>(rank + 1) /
                              static_cast<std::size_t>(np);
      memory_source.emplace(job.reads, begin, end);
      ctx.job.source = &*memory_source;
    } else {
      // Step I proper, per job: every rank takes its byte range.
      file_source.emplace(job.fasta, job.qual, rank, np);
      ctx.job.source = &*file_source;
    }

    pipeline::correction_graph().run(ctx);

    RankReport report;
    report.timeline() = std::move(ctx.job.report);
    report.rank = rank;
    // World-cumulative (message counters are rank-lifetime); the timeline
    // above is this job's alone.
    report.traffic = comm.world().traffic().snapshot(rank);
    const bool rank_degraded = report.reads_deadline_skipped > 0 ||
                               report.tiles_degraded > 0 ||
                               report.remote.degraded_lookups > 0;

    job.corrected_per_rank[static_cast<std::size_t>(rank)] =
        std::move(ctx.job.corrected);
    job.reports[static_cast<std::size_t>(rank)] = std::move(report);

    if (rank != 0) {
      JobComplete done;
      done.job_id = job.id;
      done.degraded = rank_degraded ? 1 : 0;
      comm.send_value(0, kTagJobComplete, done);
      return;
    }

    // Rank 0: collect the np-1 acks (any order — only this job is in
    // flight), merge, publish, fulfill.
    bool degraded = rank_degraded;
    for (int peer = 1; peer < np; ++peer) {
      const auto done =
          comm.recv(rtm::kAnySource, kTagJobComplete).as_value<JobComplete>();
      degraded = degraded || done.degraded != 0;
    }

    JobReport out;
    out.job_id = job.id;
    out.corrected = pipeline::MergeStage::run(std::move(job.corrected_per_rank));
    out.ranks = std::move(job.reports);
    out.deadline_missed = out.total_deadline_skipped() > 0;
    out.degraded = degraded;
    out.seconds = clock.seconds();
    // Per-job ledger attribution: how many bytes the job left behind (warm
    // caches, regrown tables) and the process peak so far. Both 0 while the
    // ledger is disarmed.
    obs::ResourceLedger& ledger = obs::ResourceLedger::global();
    out.ledger_delta_bytes =
        static_cast<std::int64_t>(ledger.total_bytes()) -
        static_cast<std::int64_t>(ledger_before);
    out.ledger_peak_bytes = ledger.total_peak_bytes();

    obs::Registry& registry = obs::Registry::global();
    const auto job_label = static_cast<std::int64_t>(job.id);
    for (const RankReport& r : out.ranks) {
      registry.publish_timeline(r, r.rank, job_label);
    }
    if (obs::Counter* c = registry.counter("reptile_jobs_completed")) {
      c->add(1);
    }
    if (degraded) {
      if (obs::Counter* c = registry.counter("reptile_jobs_degraded")) {
        c->add(1);
      }
    }
    if (obs::Histogram* h = registry.histogram("reptile_job_latency_us")) {
      h->record(static_cast<std::uint64_t>(out.seconds * 1e6));
    }

    jobs_completed.fetch_add(1, std::memory_order_relaxed);
    if (degraded) jobs_degraded.fetch_add(1, std::memory_order_relaxed);
    {
      std::lock_guard lock(jobs_mutex);
      jobs.erase(job.id);
    }
    job.promise.set_value(std::move(out));
  }

  /// Validates the request and freezes its effective configuration into a
  /// PendingJob. Runs in the submitter's thread so bad jobs throw at the
  /// submit call and never reach the ranks.
  std::shared_ptr<PendingJob> make_job(JobRequest& request) {
    if (!request.fasta.empty() && request.qual.empty()) {
      throw std::invalid_argument(
          "job: a FASTA input needs its quality file (qual path is empty)");
    }
    request.overrides.validate(config.params, config.heuristics,
                               config.worker_threads);
    auto job = std::make_shared<PendingJob>();
    job->id = next_job_id.fetch_add(1, std::memory_order_relaxed);
    job->params = request.overrides.apply_to(config.params);
    job->heuristics = request.overrides.apply_to(config.heuristics);
    job->retry = request.overrides.retry.value_or(config.retry);
    job->deadline_seconds = request.overrides.deadline_seconds.value_or(0.0);
    job->corrected_per_rank.resize(static_cast<std::size_t>(config.ranks));
    job->reports.resize(static_cast<std::size_t>(config.ranks));
    return job;
  }

  std::future<JobReport> submit(JobRequest request) {
    std::shared_ptr<PendingJob> job = make_job(request);
    job->reads = std::move(request.reads);
    job->fasta = std::move(request.fasta);
    job->qual = std::move(request.qual);
    std::future<JobReport> result = job->promise.get_future();
    const std::uint64_t id = job->id;
    {
      std::lock_guard lock(jobs_mutex);
      jobs.emplace(id, job);
    }
    if (!queue.submit(std::move(job))) {
      std::lock_guard lock(jobs_mutex);
      jobs.erase(id);
      throw std::runtime_error("correction server is shut down");
    }
    return result;
  }

  std::optional<std::future<JobReport>> try_submit(JobRequest& request) {
    std::shared_ptr<PendingJob> job = make_job(request);
    std::future<JobReport> result = job->promise.get_future();
    const std::uint64_t id = job->id;
    // The input moves in only on admission so a refused request stays
    // intact in the caller for a later retry.
    {
      std::lock_guard lock(jobs_mutex);
      jobs.emplace(id, job);
    }
    job->reads = std::move(request.reads);
    job->fasta = request.fasta;
    job->qual = request.qual;
    std::shared_ptr<PendingJob> to_queue = job;
    if (!queue.try_submit(to_queue)) {
      request.reads = std::move(job->reads);  // hand the input back
      {
        std::lock_guard lock(jobs_mutex);
        jobs.erase(id);
      }
      jobs_rejected.fetch_add(1, std::memory_order_relaxed);
      return std::nullopt;
    }
    request.reads.clear();
    request.fasta.clear();
    request.qual.clear();
    return result;
  }

  void shutdown() {
    std::lock_guard lock(shutdown_mutex);
    queue.close();
    if (world_thread.joinable()) world_thread.join();
  }
};

CorrectionServer::CorrectionServer(std::vector<seq::Read> build_reads,
                                   DistConfig config,
                                   std::size_t admission_depth)
    : impl_(std::make_unique<Impl>(std::move(build_reads), std::move(config),
                                   admission_depth)) {
  std::future<void> ready = impl_->ready_promise.get_future();
  impl_->start();
  ready.get();  // rethrows construction-time (build-phase) errors
}

CorrectionServer::~CorrectionServer() = default;  // Impl dtor shuts down

std::future<JobReport> CorrectionServer::submit(JobRequest request) {
  return impl_->submit(std::move(request));
}

std::optional<std::future<JobReport>> CorrectionServer::try_submit(
    JobRequest& request) {
  return impl_->try_submit(request);
}

void CorrectionServer::shutdown() { impl_->shutdown(); }

ServerStats CorrectionServer::stats() const {
  ServerStats s;
  s.jobs_completed = impl_->jobs_completed.load(std::memory_order_relaxed);
  s.jobs_degraded = impl_->jobs_degraded.load(std::memory_order_relaxed);
  s.jobs_rejected = impl_->jobs_rejected.load(std::memory_order_relaxed);
  s.spectrum_builds = impl_->spectrum_builds.load(std::memory_order_relaxed);
  return s;
}

int CorrectionServer::ranks() const noexcept { return impl_->config.ranks; }

std::size_t CorrectionServer::admission_depth() const noexcept {
  return impl_->queue.depth();
}

std::size_t CorrectionServer::queued() const { return impl_->queue.size(); }

const std::vector<stats::PhaseTimeline>& CorrectionServer::build_reports()
    const noexcept {
  return impl_->build_timelines;
}

}  // namespace reptile::parallel
