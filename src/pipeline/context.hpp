#pragma once
// RankContext: everything one rank's pass through the stage graph reads and
// writes, split by lifetime.
//
// The split is the contract serve mode (DESIGN.md §13) is built on:
//
//   RankState — RANK-lifetime. Bound once when the rank thread starts and
//     valid until it exits: the build parameters, the build heuristics, the
//     communicator, the spectrum model (and through it the owned tables,
//     replicas and exchanged owner filters), and the worker-thread count.
//     A resident server runs LoadBalance/BuildSpectrum against this state
//     exactly once, then serves any number of jobs over it.
//
//   JobState — JOB-lifetime. Everything one correction job owns: its id,
//     its effective parameters/heuristics (the build values plus per-job
//     overrides), its retry policy and deadline, its read source, and its
//     outputs (corrected reads + PhaseTimeline report). reset_for_job()
//     restores the struct to a pristine state so job N's report can never
//     inherit counters, caches or outputs from job N-1. One-shot drivers
//     simply run a single job.
//
// Ownership rules (see DESIGN.md "Pipeline architecture"):
//   - RankState members are BORROWED from the driver; they must outlive
//     every graph run. `comm == nullptr` selects the sequential instance
//     (one rank, no messaging, no service thread).
//   - `job.source` may be re-pointed by LoadBalanceStage at `job.balanced`,
//     the only state the context itself owns besides the job outputs.
//   - `job.corrected` and `job.report` are the outputs: stages only ever
//     append or accumulate, so a driver can inspect them between stages.

#include <cstdint>
#include <memory>
#include <vector>

#include "core/params.hpp"
#include "parallel/heuristics.hpp"
#include "parallel/protocol.hpp"
#include "rtm/comm.hpp"
#include "seq/read.hpp"
#include "stats/phase_timeline.hpp"

namespace reptile::pipeline {

class SpectrumModel;

/// Rank-lifetime state: bound once per rank thread, shared by every job the
/// rank serves. All members are borrowed from the driver.
struct RankState {
  /// The parameters the spectrum was built with. Per-job overrides may only
  /// change correction-phase knobs; build-lifetime fields (k, tile_overlap,
  /// thresholds, canonical) are pinned to these values.
  const core::CorrectorParams* build_params = nullptr;
  /// The heuristics the spectrum was built with (which tables/replicas/
  /// filters exist is decided here, once).
  parallel::Heuristics heuristics;
  /// Correction worker threads (Step IV); the communication thread is extra.
  int worker_threads = 1;
  /// The rank's communicator; nullptr for the sequential instance. Traffic
  /// and rtm-check handles are reached through comm->world().
  rtm::Comm* comm = nullptr;
  /// Where the spectrum lives (local / distributed / replicated).
  SpectrumModel* model = nullptr;
};

/// Job-lifetime state: one correction job's configuration and outputs.
struct JobState {
  std::uint64_t job_id = 0;
  /// Effective parameters: the build parameters plus this job's overrides
  /// (correction-phase knobs only; see parallel::JobOverrides).
  core::CorrectorParams params;
  /// Effective heuristics: the build heuristics plus this job's overrides
  /// (correction-phase flags only: universal / batch_lookups /
  /// filter_lookups / add_remote).
  parallel::Heuristics heuristics;
  /// Timeout/retry protocol for remote lookups (disabled = block forever,
  /// the paper's behaviour). Only the distributed model reads it.
  parallel::RetryPolicy retry;
  /// Wall-clock budget for the correction phase, in seconds; 0 disables.
  /// A job that exceeds it finishes conservatively: remaining reads pass
  /// through uncorrected (counted in report.reads_deadline_skipped) and the
  /// job is marked degraded — it never miscorrects (DESIGN.md §13).
  double deadline_seconds = 0.0;
  /// The job's Step I partition; LoadBalanceStage may re-point this.
  seq::ReadSource* source = nullptr;
  /// Owns the re-homed reads when the load_balance heuristic ran.
  std::unique_ptr<seq::OwningReadSource> balanced;
  /// Corrected reads in worker-slot order (MergeStage restores file order
  /// across ranks).
  std::vector<seq::Read> corrected;
  /// The accumulating measurements; drivers slice this into their report
  /// types (RankReport / SequentialResult / BaselineRankReport).
  stats::PhaseTimeline report;

  /// Restores the pristine state for a new job. Effective params/heuristics
  /// /retry/deadline/source are the submitter's to set afterwards; outputs
  /// and the balanced buffer are dropped so nothing from the previous job
  /// can leak into this one's results.
  void reset_for_job(std::uint64_t id) {
    job_id = id;
    deadline_seconds = 0.0;
    source = nullptr;
    balanced.reset();
    corrected.clear();
    report = stats::PhaseTimeline{};
  }
};

struct RankContext {
  RankState rank;
  JobState job;

  /// Binds the rank-lifetime configuration and seeds the job-effective
  /// copies with it (a one-shot run never diverges from the build values).
  void bind(const core::CorrectorParams& params,
            const parallel::Heuristics& heuristics = {}) {
    rank.build_params = &params;
    rank.heuristics = heuristics;
    job.params = params;
    job.heuristics = heuristics;
  }

  rtm::Comm* comm() const noexcept { return rank.comm; }
  SpectrumModel* model() const noexcept { return rank.model; }

  int rank_id() const noexcept {
    return rank.comm == nullptr ? 0 : rank.comm->rank();
  }
  int world_size() const noexcept {
    return rank.comm == nullptr ? 1 : rank.comm->size();
  }
};

}  // namespace reptile::pipeline
