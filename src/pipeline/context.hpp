#pragma once
// RankContext: everything one rank's pass through the stage graph reads and
// writes.
//
// Ownership rules (see DESIGN.md "Pipeline architecture"):
//   - params / comm / source / model are BORROWED from the driver; they must
//     outlive the graph run. `comm == nullptr` selects the sequential
//     instance (one rank, no messaging, no service thread).
//   - `source` may be re-pointed by LoadBalanceStage at `balanced`, the only
//     state the context itself owns besides its outputs.
//   - `corrected` and `report` are the outputs: stages only ever append or
//     accumulate, so a driver can inspect them between stages.

#include <memory>
#include <vector>

#include "core/params.hpp"
#include "parallel/heuristics.hpp"
#include "parallel/protocol.hpp"
#include "rtm/comm.hpp"
#include "seq/read.hpp"
#include "stats/phase_timeline.hpp"

namespace reptile::pipeline {

class SpectrumModel;

struct RankContext {
  // --- configuration, borrowed from the driver --------------------------
  const core::CorrectorParams* params = nullptr;
  parallel::Heuristics heuristics;
  /// Correction worker threads (Step IV); the communication thread is extra.
  int worker_threads = 1;
  /// Timeout/retry protocol for remote lookups (disabled = block forever,
  /// the paper's behaviour). Only the distributed model reads it.
  parallel::RetryPolicy retry;
  /// The rank's communicator; nullptr for the sequential instance. Traffic
  /// and rtm-check handles are reached through comm->world().
  rtm::Comm* comm = nullptr;
  /// The rank's Step I partition; LoadBalanceStage may re-point this.
  seq::ReadSource* source = nullptr;
  /// Where the spectrum lives (local / distributed / replicated).
  SpectrumModel* model = nullptr;

  // --- state produced by stages -----------------------------------------
  /// Owns the re-homed reads when the load_balance heuristic ran.
  std::unique_ptr<seq::OwningReadSource> balanced;
  /// Corrected reads in worker-slot order (MergeStage restores file order
  /// across ranks).
  std::vector<seq::Read> corrected;
  /// The accumulating measurements; drivers slice this into their report
  /// types (RankReport / SequentialResult / BaselineRankReport).
  stats::PhaseTimeline report;

  int rank() const noexcept { return comm == nullptr ? 0 : comm->rank(); }
  int world_size() const noexcept {
    return comm == nullptr ? 1 : comm->size();
  }
};

}  // namespace reptile::pipeline
