#include "pipeline/replicated_model.hpp"

#include <algorithm>
#include <cstdint>
#include <span>
#include <utility>

namespace reptile::pipeline {

void ReplicatedSpectrum::add_read(std::string_view bases) {
  kmer_scratch_.clear();
  tile_scratch_.clear();
  extractor_.extract(bases, kmer_scratch_, tile_scratch_);
  for (auto id : kmer_scratch_) kmers_.increment(id);
  for (auto id : tile_scratch_) tiles_.increment(id);
}

void ReplicatedSpectrum::replicate(rtm::Comm& comm) {
  auto merge = [&comm](hash::CountTable<>& table) {
    struct IdCount {
      std::uint64_t id;
      std::uint32_t count;
    };
    std::vector<IdCount> flat;
    flat.reserve(table.size());
    table.for_each([&flat](std::uint64_t id, std::uint32_t c) {
      flat.push_back({id, c});
    });
    const auto all =
        comm.allgatherv(std::span<const IdCount>(flat.data(), flat.size()));
    hash::CountTable<> merged(all.size());
    for (const auto& e : all) merged.increment(e.id, e.count);
    table = std::move(merged);
  };
  merge(kmers_);
  merge(tiles_);
}

std::uint32_t ReplicatedSpectrum::kmer_count(seq::kmer_id_t id) {
  ++stats_.kmer_lookups;
  const auto c = kmers_.find(extractor_.canon_kmer(id));
  if (!c) ++stats_.kmer_misses;
  return c.value_or(0);
}

std::uint32_t ReplicatedSpectrum::tile_count(seq::tile_id_t id) {
  ++stats_.tile_lookups;
  const auto c = tiles_.find(extractor_.canon_tile(id));
  if (!c) ++stats_.tile_misses;
  return c.value_or(0);
}

void ReplicatedSpectrumModel::fill_footprint(
    stats::SpectrumFootprint& fp) const {
  fp.hash_kmer_entries = spectrum_.kmer_entries();
  fp.hash_tile_entries = spectrum_.tile_entries();
  fp.bytes = spectrum_.memory_bytes();
}

void ReplicatedSpectrumModel::record_construction_footprint(
    stats::PhaseTimeline& report) {
  fill_footprint(report.footprint_after_construction);
  report.construction_peak_bytes =
      std::max(report.construction_peak_bytes,
               report.footprint_after_construction.bytes);
}

void ReplicatedSpectrumModel::record_correction_footprint(
    stats::PhaseTimeline& report) {
  fill_footprint(report.footprint_after_correction);
}

namespace {

/// The replica is worker-private per rank (one correction thread in this
/// mode), so lookups are the spectrum's counter delta since Step IV began.
class ReplicaHandle final : public WorkerHandle {
 public:
  explicit ReplicaHandle(ReplicatedSpectrum& spectrum)
      : spectrum_(&spectrum), before_(spectrum.stats()) {}

  core::SpectrumView& view() override { return *spectrum_; }

  void harvest(stats::PhaseTimeline& acc) override {
    core::LookupStats delta = spectrum_->stats();
    delta.kmer_lookups -= before_.kmer_lookups;
    delta.kmer_misses -= before_.kmer_misses;
    delta.tile_lookups -= before_.tile_lookups;
    delta.tile_misses -= before_.tile_misses;
    acc.lookups += delta;
  }

 private:
  ReplicatedSpectrum* spectrum_;
  core::LookupStats before_;
};

}  // namespace

std::unique_ptr<WorkerHandle> ReplicatedSpectrumModel::make_worker(
    const RankContext& ctx, int slot) {
  (void)ctx;
  (void)slot;
  return std::make_unique<ReplicaHandle>(spectrum_);
}

}  // namespace reptile::pipeline
