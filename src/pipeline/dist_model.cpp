#include "pipeline/dist_model.hpp"

#include <algorithm>

#include "parallel/remote_spectrum.hpp"
#include "pipeline/context.hpp"

namespace reptile::pipeline {

void DistSpectrumModel::finalize_construction() {
  spectrum_.prune();
  if (spectrum_.heuristics().read_kmers) {
    spectrum_.fetch_global_reads_tables();
  } else {
    spectrum_.drop_reads_tables();
  }
  if (spectrum_.heuristics().allgather_kmers) spectrum_.replicate_kmers();
  if (spectrum_.heuristics().allgather_tiles) spectrum_.replicate_tiles();
  spectrum_.replicate_group();  // no-op unless partial replication is on
  comm_->barrier();
}

void DistSpectrumModel::record_construction_footprint(
    stats::PhaseTimeline& report) {
  report.footprint_after_construction = spectrum_.footprint();
  report.construction_peak_bytes =
      std::max(report.construction_peak_bytes,
               report.footprint_after_construction.bytes);
}

void DistSpectrumModel::reset_for_job() { spectrum_.reset_for_job(); }

void DistSpectrumModel::prepare_correction(RankContext& ctx) {
  // Filter exchange runs on the rank main thread, before the service
  // thread exists: kTagFilterExchange is the only tagged traffic in
  // flight, so the blocking collection can never steal a lookup message.
  // (Idempotent: in serve mode only the first job's call exchanges.)
  spectrum_.exchange_filters(ctx.job.retry);
  comm_->reset_done();
  service_.emplace(*comm_, spectrum_);
}

/// One worker's lookup surface: a RemoteSpectrumView with the worker's own
/// reply tags (slot) and, with several workers sharing add_remote, the
/// thread-safe chunk-local caching variant.
class DistSpectrumModel::Handle final : public WorkerHandle {
 public:
  Handle(rtm::Comm& comm, parallel::DistSpectrum& spectrum, int slot,
         bool cache_remote_locally, parallel::RetryPolicy retry,
         const parallel::Heuristics& job_heur)
      : view_(comm, spectrum, slot, cache_remote_locally, retry, &job_heur) {}

  core::SpectrumView& view() override { return view_; }

  void prefetch_chunk(const seq::ReadBatch& batch) override {
    view_.prefetch_chunk(batch);
  }

  void harvest(stats::PhaseTimeline& acc) override {
    acc.lookups += view_.stats();
    acc.remote += view_.remote_stats();
    acc.comm_seconds = view_.comm_seconds();
  }

 private:
  parallel::RemoteSpectrumView view_;
};

std::unique_ptr<WorkerHandle> DistSpectrumModel::make_worker(
    const RankContext& ctx, int slot) {
  // With concurrent workers, add_remote must not write the shared reads
  // tables; each view then caches replies into its own chunk-local cache.
  // The view consults the JOB-effective heuristics (per-job correction
  // overrides), not the build heuristics baked into the spectrum.
  const bool cache_remote_locally =
      ctx.rank.worker_threads > 1 && ctx.job.heuristics.add_remote;
  return std::make_unique<Handle>(*comm_, spectrum_, slot,
                                  cache_remote_locally, ctx.job.retry,
                                  ctx.job.heuristics);
}

}  // namespace reptile::pipeline
