#pragma once
// The stage graph: the paper's pipeline as named, individually runnable
// stages over a RankContext.
//
//   LoadBalanceStage      — Step 0 (Section III-A): re-home reads by
//                           sequence hash before both phases.
//   BuildSpectrumStage    — Steps I-III: chunked read streaming, spectrum
//                           extraction, owner exchange (per chunk with
//                           batch_reads), prune, replication heuristics.
//   CorrectStage          — Step IV: worker pool + communication thread,
//                           lifecycles held by rtm::ScopedThreadGroup.
//   WorkQueueCorrectStage — the prior-art Step IV: dynamic master-worker
//                           grants over a replicated spectrum.
//   MergeStage            — cross-rank reduction back to file order.
//
// All three drivers are configurations of this graph: run_sequential is the
// 1-rank/no-comm instance, run_distributed the full paper instance,
// run_replicated_baseline the replicated-spectrum + work-queue instance.

#include <cstddef>
#include <memory>
#include <string_view>
#include <vector>

#include "pipeline/context.hpp"
#include "pipeline/spectrum_model.hpp"

namespace reptile::pipeline {

/// One named step of a rank's pass. Stages communicate only through the
/// RankContext, so each is runnable (and unit-testable) in isolation.
class Stage {
 public:
  virtual ~Stage() = default;
  virtual std::string_view name() const = 0;
  virtual void run(RankContext& ctx) = 0;
};

/// An ordered list of stages; running it times every stage into
/// report.stages (wall seconds + spectrum footprint at stage exit).
class StageGraph {
 public:
  StageGraph& add(std::unique_ptr<Stage> stage) {
    stages_.push_back(std::move(stage));
    return *this;
  }

  void run(RankContext& ctx);

  std::size_t size() const noexcept { return stages_.size(); }

 private:
  std::vector<std::unique_ptr<Stage>> stages_;
};

/// Step 0 (Section III-A): with the load_balance heuristic and a
/// communicator, redistributes reads to their hash-owning ranks and
/// re-points ctx.job.source at the owned set. Always records
/// report.reads_processed = |source| (the rank's working set for the job).
class LoadBalanceStage final : public Stage {
 public:
  std::string_view name() const override { return "load_balance"; }
  void run(RankContext& ctx) override;
};

/// Steps I-III: streams ctx.job.source in chunks of params.chunk_size into the
/// model, with the chunk-synchronous exchange loop of batch_reads (run to
/// the global maximum batch count) or one final exchange otherwise; then
/// the model's prune/replication finalization. Records construct_seconds,
/// batches, the per-chunk construction peak, and the post-construction
/// footprint.
class BuildSpectrumStage final : public Stage {
 public:
  std::string_view name() const override { return "build_spectrum"; }
  void run(RankContext& ctx) override;
};

/// Step IV: corrects the rank's reads over the model. Worker slot 0 runs on
/// the rank's main thread; slots 1..worker_threads-1 and the communication
/// thread (when the model needs one) run in rtm::ScopedThreadGroups, so all
/// threads are joined — and the completion announcement fires exactly once —
/// even when a worker throws. Records correct_seconds, comm_seconds (max
/// over workers), the merged lookup/remote stats, service stats, and the
/// post-correction footprint.
class CorrectStage final : public Stage {
 public:
  std::string_view name() const override { return "correct"; }
  void run(RankContext& ctx) override;
};

/// The prior-art Step IV (Shah 2012 / Jammula 2015): a global master on
/// rank 0 grants fixed-size chunks of the SHARED read array on demand;
/// every rank corrects its grants against its full spectrum replica with no
/// spectrum communication. Records reads_processed per granted read and
/// chunks_granted into report.batches (the driver copies it to its
/// chunks_granted column).
class WorkQueueCorrectStage final : public Stage {
 public:
  WorkQueueCorrectStage(const std::vector<seq::Read>& all_reads,
                        std::size_t work_chunk)
      : all_reads_(&all_reads), work_chunk_(work_chunk) {}

  std::string_view name() const override { return "work_queue_correct"; }
  void run(RankContext& ctx) override;

 private:
  const std::vector<seq::Read>* all_reads_;
  std::size_t work_chunk_;
};

/// Cross-rank reduction, run by the driver thread after the world joined:
/// concatenates the per-rank corrected vectors and restores original file
/// order (sort by sequence number — load balancing and dynamic grants both
/// permute reads across ranks).
class MergeStage {
 public:
  static std::vector<seq::Read> run(
      std::vector<std::vector<seq::Read>> per_rank);
};

/// The paper pipeline: LoadBalance -> BuildSpectrum -> Correct. The
/// sequential driver runs the same graph with comm == nullptr (LoadBalance
/// degenerates to bookkeeping, Correct to one worker with no service).
StageGraph paper_graph();

/// The per-job slice of the paper pipeline for a resident server: LoadBalance
/// -> Correct over a spectrum that was already built (BuildSpectrum ran once
/// at server start — the rank-lifetime half of the split).
StageGraph correction_graph();

/// The prior-art pipeline: BuildSpectrum (replicated model) -> WorkQueue
/// correction over the shared read array.
StageGraph baseline_graph(const std::vector<seq::Read>& all_reads,
                          std::size_t work_chunk);

}  // namespace reptile::pipeline
