// parallel::run_replicated_baseline as a stage-graph configuration: the
// prior-art instance (BuildSpectrum over the replicated model, then the
// dynamic master-worker WorkQueueCorrectStage over the shared read array).

#include "parallel/baseline_replicated.hpp"

#include <utility>

#include "pipeline/context.hpp"
#include "pipeline/replicated_model.hpp"
#include "pipeline/stages.hpp"
#include "rtm/comm.hpp"

namespace reptile::parallel {

BaselineResult run_replicated_baseline(const std::vector<seq::Read>& reads,
                                       const BaselineConfig& config) {
  config.params.validate();

  std::vector<std::vector<seq::Read>> corrected_per_rank(
      static_cast<std::size_t>(config.ranks));
  std::vector<BaselineRankReport> reports(
      static_cast<std::size_t>(config.ranks));

  rtm::run_world(
      {config.ranks, config.ranks_per_node}, [&](rtm::Comm& comm) {
        const int rank = comm.rank();
        const int np = comm.size();

        pipeline::ReplicatedSpectrumModel model(config.params, comm);
        const std::size_t begin = reads.size() *
                                  static_cast<std::size_t>(rank) /
                                  static_cast<std::size_t>(np);
        const std::size_t end = reads.size() *
                                static_cast<std::size_t>(rank + 1) /
                                static_cast<std::size_t>(np);
        seq::SliceReadSource source(reads, begin, end);

        pipeline::RankContext ctx;
        ctx.bind(config.params);
        ctx.rank.comm = &comm;
        ctx.rank.model = &model;
        ctx.job.source = &source;
        pipeline::baseline_graph(reads, config.work_chunk).run(ctx);

        BaselineRankReport report;
        report.timeline() = std::move(ctx.job.report);
        report.rank = rank;
        report.chunks_granted = report.work_grants;
        report.spectrum_bytes = report.footprint_after_construction.bytes;

        corrected_per_rank[static_cast<std::size_t>(rank)] =
            std::move(ctx.job.corrected);
        reports[static_cast<std::size_t>(rank)] = std::move(report);
      });

  BaselineResult result;
  result.ranks = std::move(reports);
  result.corrected = pipeline::MergeStage::run(std::move(corrected_per_rank));
  return result;
}

}  // namespace reptile::parallel
