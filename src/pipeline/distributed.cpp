// parallel::run_distributed / run_distributed_files as stage-graph
// configurations: the full paper instance (LoadBalance -> BuildSpectrum ->
// Correct over the partitioned spectrum model), one graph run per rank
// inside the in-process runtime, then the cross-rank merge.

#include "parallel/dist_pipeline.hpp"

#include <memory>
#include <stdexcept>
#include <utility>

#include "obs/ledger.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "parallel/protocol_table.hpp"
#include "pipeline/context.hpp"
#include "pipeline/dist_model.hpp"
#include "pipeline/stages.hpp"
#include "rtm/check/check.hpp"
#include "rtm/comm.hpp"
#include "seq/fasta_io.hpp"

namespace reptile::parallel {

namespace {

/// One rank's run over its Step I partition `raw_source`; writes its slice
/// of the shared output arrays.
void rank_main(rtm::Comm& comm, seq::ReadSource& raw_source,
               const DistConfig& config,
               std::vector<std::vector<seq::Read>>& corrected_per_rank,
               std::vector<RankReport>& reports) {
  const int rank = comm.rank();

  pipeline::DistSpectrumModel model(config.params, config.heuristics, comm);
  pipeline::RankContext ctx;
  ctx.bind(config.params, config.heuristics);
  ctx.rank.worker_threads = config.worker_threads;
  ctx.rank.comm = &comm;
  ctx.rank.model = &model;
  ctx.job.retry = config.retry;
  ctx.job.source = &raw_source;
  pipeline::paper_graph().run(ctx);

  RankReport report;
  report.timeline() = std::move(ctx.job.report);
  report.rank = rank;
  report.traffic = comm.world().traffic().snapshot(rank);

  corrected_per_rank[static_cast<std::size_t>(rank)] =
      std::move(ctx.job.corrected);
  reports[static_cast<std::size_t>(rank)] = std::move(report);
}

DistResult merge_results(std::vector<std::vector<seq::Read>> corrected_per_rank,
                         std::vector<RankReport> reports) {
  DistResult result;
  result.ranks = std::move(reports);
  result.corrected = pipeline::MergeStage::run(std::move(corrected_per_rank));
  return result;
}

/// Copies the finalized per-rank audit counters into the reports.
void apply_check_snapshots(rtm::World& world,
                           std::vector<RankReport>& reports) {
  rtm::check::RunChecker* check = world.checker();
  if (check == nullptr) return;
  for (RankReport& report : reports) {
    report.check = check->snapshot(report.rank);
  }
}

/// Applies the run's observability configuration. Called unconditionally at
/// the start of every run — including the default-disabled state — so a
/// traced run never leaks tracing or metrics into the next run in the same
/// process (the identity tests depend on a disabled run being bit-identical
/// to the seed).
void begin_observability(const DistConfig& config) {
  obs::Tracer::instance().configure(config.trace);
  obs::Registry::global().configure(config.trace.metrics);
  obs::ResourceLedger::global().configure(config.trace.ledger);
}

/// End-of-run observability: mirrors each rank's timeline counters into the
/// metrics registry, then — once the runtime threads have all joined, which
/// is what makes the ring buffers safe to read — writes one trace shard per
/// rank. Destroying the World is the join point, so the caller must pass
/// ownership in and lets this function release it first.
void finish_observability(std::unique_ptr<rtm::World> world,
                          const DistConfig& config,
                          const std::vector<RankReport>& reports) {
  for (const RankReport& report : reports) {
    obs::Registry::global().publish_timeline(report, report.rank);
  }
  if (obs::ResourceLedger::global().enabled()) {
    obs::publish_ledger_metrics(obs::ResourceLedger::global().snapshot());
  }
  world.reset();  // joins chaos/watchdog threads; ring buffers now quiescent
  if (config.trace.enabled && !config.trace.path.empty()) {
    obs::Tracer::instance().write_shards(config.trace.path, config.ranks);
  }
}

}  // namespace

void validate_dist_config(const DistConfig& config) {
  config.params.validate();
  config.heuristics.validate();
  if (config.worker_threads < 1) {
    throw std::invalid_argument("worker_threads must be >= 1");
  }
  if (config.worker_threads > 1 && config.heuristics.add_remote &&
      !config.heuristics.batch_lookups) {
    throw std::invalid_argument(
        "add_remote caches into the shared reads tables, which is not "
        "thread-safe with worker_threads > 1: enable "
        "heuristics.batch_lookups (replies then land in each worker's "
        "chunk-local prefetch cache) or use worker_threads == 1");
  }
  config.run_options.chaos.validate();
  config.retry.validate();
  if (config.run_options.chaos.lossy() && !config.retry.enabled()) {
    throw std::invalid_argument(
        "chaos plan drops or truncates messages but the retry protocol is "
        "disabled: a lost lookup would block its worker forever. Set "
        "retry.timeout_ticks > 0 (see parallel::RetryPolicy)");
  }
}

rtm::RunOptions resolve_run_options(const DistConfig& config) {
  rtm::RunOptions options = config.run_options;
  if (options.check.enabled && options.check.lint &&
      options.check.tags.empty()) {
    options.check.tags = lookup_tag_table();
    options.check.strict_tags = true;
  }
  return options;
}

DistResult run_distributed(const std::vector<seq::Read>& reads,
                           const DistConfig& config) {
  validate_dist_config(config);
  begin_observability(config);

  std::vector<std::vector<seq::Read>> corrected_per_rank(
      static_cast<std::size_t>(config.ranks));
  std::vector<RankReport> reports(static_cast<std::size_t>(config.ranks));

  auto world = rtm::run_world(config.topology(), [&](rtm::Comm& comm) {
    const std::size_t begin = reads.size() *
                              static_cast<std::size_t>(comm.rank()) /
                              static_cast<std::size_t>(comm.size());
    const std::size_t end = reads.size() *
                            static_cast<std::size_t>(comm.rank() + 1) /
                            static_cast<std::size_t>(comm.size());
    seq::SliceReadSource source(reads, begin, end);
    rank_main(comm, source, config, corrected_per_rank, reports);
  }, resolve_run_options(config));
  apply_check_snapshots(*world, reports);
  finish_observability(std::move(world), config, reports);

  return merge_results(std::move(corrected_per_rank), std::move(reports));
}

DistResult run_distributed_files(const std::filesystem::path& fasta,
                                 const std::filesystem::path& qual,
                                 const DistConfig& config) {
  validate_dist_config(config);
  begin_observability(config);

  std::vector<std::vector<seq::Read>> corrected_per_rank(
      static_cast<std::size_t>(config.ranks));
  std::vector<RankReport> reports(static_cast<std::size_t>(config.ranks));

  auto world = rtm::run_world(config.topology(), [&](rtm::Comm& comm) {
    // Step I proper: every rank opens both files and takes its byte range.
    seq::PartitionedReadSource source(fasta, qual, comm.rank(), comm.size());
    rank_main(comm, source, config, corrected_per_rank, reports);
  }, resolve_run_options(config));
  apply_check_snapshots(*world, reports);
  finish_observability(std::move(world), config, reports);

  return merge_results(std::move(corrected_per_rank), std::move(reports));
}

}  // namespace reptile::parallel
