// Micro-benchmarks of the substrate data structures (google-benchmark).
//
// Includes the paper's Section II design contrast: Jammula et al. store the
// spectrum as sorted arrays searched by repeated binary search (improved to
// a cache-aware layout); this implementation uses hash tables instead,
// "prevent[ing] any need for sorting the arrays or for repeated binary
// searches". BM_SpectrumLookup_* quantifies that choice.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <thread>
#include <vector>

#include "core/corrector.hpp"
#include "core/spectrum.hpp"
#include "hash/bloom_filter.hpp"
#include "hash/count_table.hpp"
#include "hash/sorted_spectrum.hpp"
#include "parallel/lookup_service.hpp"
#include "parallel/wire.hpp"
#include "rtm/mailbox.hpp"
#include "seq/dataset.hpp"
#include "seq/kmer.hpp"
#include "seq/rng.hpp"
#include "stats/report.hpp"
#include "stats/stopwatch.hpp"
#include "stats/table.hpp"

namespace {

using namespace reptile;

std::vector<std::uint64_t> random_keys(std::size_t n, std::uint64_t seed) {
  seq::Rng rng(seed);
  std::vector<std::uint64_t> keys(n);
  for (auto& k : keys) k = rng.next();
  return keys;
}

// --- hash table vs sorted-array binary search (paper Section II-B) --------

void BM_SpectrumLookup_HashTable(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto keys = random_keys(n, 1);
  hash::CountTable<> table(n);
  for (auto k : keys) table.increment(k, 3);
  const auto probes = random_keys(n, 2);  // ~all misses, like candidate tiles
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.find(keys[i % n]));
    benchmark::DoNotOptimize(table.find(probes[i % n]));
    ++i;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 2);
}
BENCHMARK(BM_SpectrumLookup_HashTable)->Arg(1 << 14)->Arg(1 << 18)->Arg(1 << 22);

void BM_SpectrumLookup_SortedArray(benchmark::State& state) {
  // Shah et al.'s layout: (id, count) pairs sorted by id, binary search.
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto keys = random_keys(n, 1);
  std::vector<std::pair<std::uint64_t, std::uint32_t>> entries;
  entries.reserve(n);
  for (auto k : keys) entries.emplace_back(k, 3);
  const auto table = hash::SortedCountArray::from_entries(std::move(entries));
  const auto probes = random_keys(n, 2);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.find(keys[i % n]));
    benchmark::DoNotOptimize(table.find(probes[i % n]));
    ++i;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 2);
}
BENCHMARK(BM_SpectrumLookup_SortedArray)
    ->Arg(1 << 14)
    ->Arg(1 << 18)
    ->Arg(1 << 22);

void BM_SpectrumLookup_CacheAware(benchmark::State& state) {
  // Jammula et al.'s improvement: (B+1)-ary cache-line-blocked layout,
  // O(log_{B+1} N) cache misses per search.
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto keys = random_keys(n, 1);
  std::vector<std::pair<std::uint64_t, std::uint32_t>> entries;
  entries.reserve(n);
  for (auto k : keys) entries.emplace_back(k, 3);
  const auto table =
      hash::CacheAwareCountArray::from_entries(std::move(entries));
  const auto probes = random_keys(n, 2);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.find(keys[i % n]));
    benchmark::DoNotOptimize(table.find(probes[i % n]));
    ++i;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 2);
}
BENCHMARK(BM_SpectrumLookup_CacheAware)
    ->Arg(1 << 14)
    ->Arg(1 << 18)
    ->Arg(1 << 22);

// --- construction-side primitives ------------------------------------------

void BM_CountTableInsert(benchmark::State& state) {
  const auto keys = random_keys(1 << 16, 3);
  for (auto _ : state) {
    hash::CountTable<> table;
    for (auto k : keys) table.increment(k);
    benchmark::DoNotOptimize(table.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          (1 << 16));
}
BENCHMARK(BM_CountTableInsert);

void BM_KmerExtraction(benchmark::State& state) {
  seq::DatasetSpec spec{"bench", 200, 102, 10000};
  const auto ds = seq::SyntheticDataset::generate(spec, {}, 4);
  const seq::KmerCodec codec(12);
  std::vector<seq::kmer_id_t> out;
  for (auto _ : state) {
    out.clear();
    for (const auto& r : ds.reads) codec.extract(r.bases, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(200 * (102 - 12 + 1)));
}
BENCHMARK(BM_KmerExtraction);

void BM_BloomFilterInsert(benchmark::State& state) {
  const auto keys = random_keys(1 << 16, 5);
  for (auto _ : state) {
    hash::BloomFilter bf(1 << 16, 0.01);
    for (auto k : keys) benchmark::DoNotOptimize(bf.insert(k));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          (1 << 16));
}
BENCHMARK(BM_BloomFilterInsert);

// --- correction throughput ---------------------------------------------------

void BM_CorrectRead(benchmark::State& state) {
  core::CorrectorParams params;
  params.k = 12;
  params.tile_overlap = 4;
  seq::DatasetSpec spec{"bench", 3000, 102, 4000};
  seq::ErrorModelParams errors;
  errors.error_rate_start = 0.003;
  errors.error_rate_end = 0.01;
  const auto ds = seq::SyntheticDataset::generate(spec, errors, 6);
  core::LocalSpectrum spectrum(params);
  for (const auto& r : ds.reads) spectrum.add_read(r.bases);
  spectrum.prune();
  core::TileCorrector corrector(params);
  std::size_t i = 0;
  for (auto _ : state) {
    seq::Read copy = ds.reads[i % ds.reads.size()];
    benchmark::DoNotOptimize(corrector.correct(copy, spectrum));
    ++i;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_CorrectRead);

// --- messaging ----------------------------------------------------------------

void BM_MailboxPushPop(benchmark::State& state) {
  rtm::Mailbox mb;
  for (auto _ : state) {
    mb.push(rtm::Message::of_value(0, 1, std::uint64_t{42}));
    benchmark::DoNotOptimize(mb.try_pop(0, 1));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_MailboxPushPop);

// --- scalar vs batched remote lookups ----------------------------------------

/// One measured configuration of the remote-lookup protocol comparison.
struct LookupRow {
  std::size_t batch_size = 1;  ///< 1 = scalar request/reply
  std::size_t lookups = 0;
  std::size_t messages = 0;  ///< request messages sent by the driver
  double seconds = 0;
};

/// Times `lookups` remote k-mer resolutions against a live LookupService
/// over a 2-rank world: the scalar one-request-per-ID protocol vs one
/// vectored request per `batch` IDs (the batch_lookups wire path). Same
/// IDs, same service, same runtime — the difference is purely the number of
/// round trips the driver blocks on.
std::vector<LookupRow> measure_remote_lookups(
    std::size_t lookups, const std::vector<std::size_t>& batch_sizes) {
  using namespace reptile::parallel;
  seq::DatasetSpec spec{"mb_remote", 2000, 70, 4000};
  const auto ds = seq::SyntheticDataset::generate(spec, {}, 97);
  core::CorrectorParams params;
  params.k = 12;
  params.tile_overlap = 4;
  params.kmer_threshold = 2;
  params.tile_threshold = 2;

  std::vector<LookupRow> rows;
  rtm::run_world({2, 1}, [&](rtm::Comm& comm) {
    // Rank 1 owns a populated shard and serves; rank 0 drives lookups.
    DistSpectrum spectrum(params, Heuristics{}, comm);
    if (comm.rank() == 1) {
      for (const auto& r : ds.reads) spectrum.add_read(r.bases);
    }
    spectrum.exchange_to_owners();
    spectrum.prune();

    if (comm.rank() == 1) {
      std::vector<std::uint64_t> owned;
      spectrum.hash_kmers().for_each(
          [&](std::uint64_t id, std::uint32_t) { owned.push_back(id); });
      comm.send<std::uint64_t>(
          0, 97, std::span<const std::uint64_t>(owned.data(), owned.size()));
      comm.reset_done();
      LookupService service(comm, spectrum);
      std::thread server([&service] { service.serve(); });
      comm.signal_done();
      server.join();
    } else {
      auto ids = comm.recv(1, 97).as<std::uint64_t>();
      comm.reset_done();
      stats::Stopwatch clock;

      // Scalar baseline: one blocking round trip per lookup.
      LookupRow scalar;
      scalar.batch_size = 1;
      clock.restart();
      for (std::size_t i = 0; i < lookups; ++i) {
        LookupRequest req;
        req.id = ids[i % ids.size()];
        comm.send_value(1, kTagKmerRequest, req);
        benchmark::DoNotOptimize(
            comm.recv(1, kTagKmerReply).as_value<LookupReply>().count);
        ++scalar.messages;
        ++scalar.lookups;
      }
      scalar.seconds = clock.seconds();
      rows.push_back(scalar);

      // Batched: one vectored round trip per `batch` lookups.
      std::vector<std::uint8_t> buf;
      std::vector<std::uint64_t> group;
      for (const std::size_t batch : batch_sizes) {
        LookupRow row;
        row.batch_size = batch;
        clock.restart();
        for (std::size_t done = 0; done < lookups; done += group.size()) {
          group.clear();
          for (std::size_t j = 0; j < batch && done + j < lookups; ++j) {
            group.push_back(ids[(done + j) % ids.size()]);
          }
          buf.clear();
          encode_batch_request(
              LookupKind::kKmer, batch_reply_tag(LookupKind::kKmer),
              std::span<const std::uint64_t>(group.data(), group.size()),
              buf);
          comm.send<std::uint8_t>(
              1, kTagBatchRequest,
              std::span<const std::uint8_t>(buf.data(), buf.size()));
          const auto reply = decode_batch_reply(
              comm.recv(1, batch_reply_tag(LookupKind::kKmer)).payload);
          benchmark::DoNotOptimize(reply.counts.data());
          ++row.messages;
          row.lookups += reply.counts.size();
        }
        row.seconds = clock.seconds();
        rows.push_back(row);
      }
      comm.signal_done();
    }
    comm.barrier();
  }, [] {
    rtm::RunOptions options;
    options.check.enabled = false;  // benchmark: no rtm-check hooks
    return options;
  }());
  return rows;
}

void report_remote_lookups() {
  std::printf("\n--- remote lookups: scalar request/reply vs batched "
              "(batch_lookups wire path) ---\n");
  const auto rows = measure_remote_lookups(20000, {16, 64, 256, 1024});
  const double scalar_ns =
      rows.front().seconds * 1e9 / static_cast<double>(rows.front().lookups);
  stats::TextTable table(
      {"mode", "batch_size", "lookups", "messages", "ns/lookup", "speedup"});
  stats::RunReport report("microbench_remote_lookups");
  for (const auto& r : rows) {
    const double ns =
        r.seconds * 1e9 / static_cast<double>(std::max<std::size_t>(r.lookups, 1));
    table.row()
        .cell(r.batch_size == 1 ? "scalar" : "batched")
        .cell(r.batch_size)
        .cell(r.lookups)
        .cell(r.messages)
        .cell_fixed(ns, 1)
        .cell_fixed(scalar_ns / ns, 2);
    report.record()
        .add("batch_size", static_cast<double>(r.batch_size))
        .add("lookups", static_cast<double>(r.lookups))
        .add("messages", static_cast<double>(r.messages))
        .add("seconds", r.seconds)
        .add("ns_per_lookup", ns);
  }
  table.print(std::cout);
  std::printf("%s\n", report.to_json().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  report_remote_lookups();
  return 0;
}
