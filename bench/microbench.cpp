// Micro-benchmarks of the substrate data structures (google-benchmark).
//
// Includes the paper's Section II design contrast: Jammula et al. store the
// spectrum as sorted arrays searched by repeated binary search (improved to
// a cache-aware layout); this implementation uses hash tables instead,
// "prevent[ing] any need for sorting the arrays or for repeated binary
// searches". BM_SpectrumLookup_* quantifies that choice.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "core/corrector.hpp"
#include "core/spectrum.hpp"
#include "hash/bloom_filter.hpp"
#include "hash/count_table.hpp"
#include "hash/sorted_spectrum.hpp"
#include "obs/metrics.hpp"
#include "parallel/lookup_service.hpp"
#include "parallel/remote_spectrum.hpp"
#include "parallel/wire.hpp"
#include "rtm/mailbox.hpp"
#include "seq/dataset.hpp"
#include "seq/kmer.hpp"
#include "seq/rng.hpp"
#include "stats/report.hpp"
#include "stats/stopwatch.hpp"
#include "stats/table.hpp"

namespace {

using namespace reptile;

std::vector<std::uint64_t> random_keys(std::size_t n, std::uint64_t seed) {
  seq::Rng rng(seed);
  std::vector<std::uint64_t> keys(n);
  for (auto& k : keys) k = rng.next();
  return keys;
}

// --- hash table vs sorted-array binary search (paper Section II-B) --------

void BM_SpectrumLookup_HashTable(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto keys = random_keys(n, 1);
  hash::CountTable<> table(n);
  for (auto k : keys) table.increment(k, 3);
  const auto probes = random_keys(n, 2);  // ~all misses, like candidate tiles
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.find(keys[i % n]));
    benchmark::DoNotOptimize(table.find(probes[i % n]));
    ++i;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 2);
}
BENCHMARK(BM_SpectrumLookup_HashTable)->Arg(1 << 14)->Arg(1 << 18)->Arg(1 << 22);

void BM_SpectrumLookup_SortedArray(benchmark::State& state) {
  // Shah et al.'s layout: (id, count) pairs sorted by id, binary search.
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto keys = random_keys(n, 1);
  std::vector<std::pair<std::uint64_t, std::uint32_t>> entries;
  entries.reserve(n);
  for (auto k : keys) entries.emplace_back(k, 3);
  const auto table = hash::SortedCountArray::from_entries(std::move(entries));
  const auto probes = random_keys(n, 2);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.find(keys[i % n]));
    benchmark::DoNotOptimize(table.find(probes[i % n]));
    ++i;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 2);
}
BENCHMARK(BM_SpectrumLookup_SortedArray)
    ->Arg(1 << 14)
    ->Arg(1 << 18)
    ->Arg(1 << 22);

void BM_SpectrumLookup_CacheAware(benchmark::State& state) {
  // Jammula et al.'s improvement: (B+1)-ary cache-line-blocked layout,
  // O(log_{B+1} N) cache misses per search.
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto keys = random_keys(n, 1);
  std::vector<std::pair<std::uint64_t, std::uint32_t>> entries;
  entries.reserve(n);
  for (auto k : keys) entries.emplace_back(k, 3);
  const auto table =
      hash::CacheAwareCountArray::from_entries(std::move(entries));
  const auto probes = random_keys(n, 2);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.find(keys[i % n]));
    benchmark::DoNotOptimize(table.find(probes[i % n]));
    ++i;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 2);
}
BENCHMARK(BM_SpectrumLookup_CacheAware)
    ->Arg(1 << 14)
    ->Arg(1 << 18)
    ->Arg(1 << 22);

// --- construction-side primitives ------------------------------------------

void BM_CountTableInsert(benchmark::State& state) {
  const auto keys = random_keys(1 << 16, 3);
  for (auto _ : state) {
    hash::CountTable<> table;
    for (auto k : keys) table.increment(k);
    benchmark::DoNotOptimize(table.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          (1 << 16));
}
BENCHMARK(BM_CountTableInsert);

void BM_KmerExtraction(benchmark::State& state) {
  seq::DatasetSpec spec{"bench", 200, 102, 10000};
  const auto ds = seq::SyntheticDataset::generate(spec, {}, 4);
  const seq::KmerCodec codec(12);
  std::vector<seq::kmer_id_t> out;
  for (auto _ : state) {
    out.clear();
    for (const auto& r : ds.reads) codec.extract(r.bases, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(200 * (102 - 12 + 1)));
}
BENCHMARK(BM_KmerExtraction);

void BM_BloomFilterInsert(benchmark::State& state) {
  const auto keys = random_keys(1 << 16, 5);
  for (auto _ : state) {
    hash::BloomFilter bf(1 << 16, 0.01);
    for (auto k : keys) benchmark::DoNotOptimize(bf.insert(k));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          (1 << 16));
}
BENCHMARK(BM_BloomFilterInsert);

// --- correction throughput ---------------------------------------------------

void BM_CorrectRead(benchmark::State& state) {
  core::CorrectorParams params;
  params.k = 12;
  params.tile_overlap = 4;
  seq::DatasetSpec spec{"bench", 3000, 102, 4000};
  seq::ErrorModelParams errors;
  errors.error_rate_start = 0.003;
  errors.error_rate_end = 0.01;
  const auto ds = seq::SyntheticDataset::generate(spec, errors, 6);
  core::LocalSpectrum spectrum(params);
  for (const auto& r : ds.reads) spectrum.add_read(r.bases);
  spectrum.prune();
  core::TileCorrector corrector(params);
  std::size_t i = 0;
  for (auto _ : state) {
    seq::Read copy = ds.reads[i % ds.reads.size()];
    benchmark::DoNotOptimize(corrector.correct(copy, spectrum));
    ++i;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_CorrectRead);

// --- messaging ----------------------------------------------------------------

void BM_MailboxPushPop(benchmark::State& state) {
  rtm::Mailbox mb;
  for (auto _ : state) {
    mb.push(rtm::Message::of_value(0, 1, std::uint64_t{42}));
    benchmark::DoNotOptimize(mb.try_pop(0, 1));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_MailboxPushPop);

// --- scalar vs batched remote lookups ----------------------------------------

/// One measured configuration of the remote-lookup protocol comparison.
struct LookupRow {
  std::size_t batch_size = 1;  ///< 1 = scalar request/reply
  std::size_t lookups = 0;
  std::size_t messages = 0;  ///< request messages sent by the driver
  double seconds = 0;
};

/// Times `lookups` remote k-mer resolutions against a live LookupService
/// over a 2-rank world: the scalar one-request-per-ID protocol vs one
/// vectored request per `batch` IDs (the batch_lookups wire path). Same
/// IDs, same service, same runtime — the difference is purely the number of
/// round trips the driver blocks on.
std::vector<LookupRow> measure_remote_lookups(
    std::size_t lookups, const std::vector<std::size_t>& batch_sizes) {
  using namespace reptile::parallel;
  seq::DatasetSpec spec{"mb_remote", 2000, 70, 4000};
  const auto ds = seq::SyntheticDataset::generate(spec, {}, 97);
  core::CorrectorParams params;
  params.k = 12;
  params.tile_overlap = 4;
  params.kmer_threshold = 2;
  params.tile_threshold = 2;

  std::vector<LookupRow> rows;
  rtm::run_world({2, 1}, [&](rtm::Comm& comm) {
    // Rank 1 owns a populated shard and serves; rank 0 drives lookups.
    DistSpectrum spectrum(params, Heuristics{}, comm);
    if (comm.rank() == 1) {
      for (const auto& r : ds.reads) spectrum.add_read(r.bases);
    }
    spectrum.exchange_to_owners();
    spectrum.prune();

    if (comm.rank() == 1) {
      std::vector<std::uint64_t> owned;
      spectrum.hash_kmers().for_each(
          [&](std::uint64_t id, std::uint32_t) { owned.push_back(id); });
      comm.send<std::uint64_t>(
          0, 97, std::span<const std::uint64_t>(owned.data(), owned.size()));
      comm.reset_done();
      LookupService service(comm, spectrum);
      std::thread server([&service] { service.serve(); });
      comm.signal_done();
      server.join();
    } else {
      auto ids = comm.recv(1, 97).as<std::uint64_t>();
      comm.reset_done();
      stats::Stopwatch clock;

      // Scalar baseline: one blocking round trip per lookup.
      LookupRow scalar;
      scalar.batch_size = 1;
      clock.restart();
      for (std::size_t i = 0; i < lookups; ++i) {
        LookupRequest req;
        req.id = ids[i % ids.size()];
        comm.send_value(1, kTagKmerRequest, req);
        benchmark::DoNotOptimize(
            comm.recv(1, kTagKmerReply).as_value<LookupReply>().count);
        ++scalar.messages;
        ++scalar.lookups;
      }
      scalar.seconds = clock.seconds();
      rows.push_back(scalar);

      // Batched: one vectored round trip per `batch` lookups.
      std::vector<std::uint8_t> buf;
      std::vector<std::uint64_t> group;
      for (const std::size_t batch : batch_sizes) {
        LookupRow row;
        row.batch_size = batch;
        clock.restart();
        for (std::size_t done = 0; done < lookups; done += group.size()) {
          group.clear();
          for (std::size_t j = 0; j < batch && done + j < lookups; ++j) {
            group.push_back(ids[(done + j) % ids.size()]);
          }
          buf.clear();
          encode_batch_request(
              LookupKind::kKmer, batch_reply_tag(LookupKind::kKmer),
              std::span<const std::uint64_t>(group.data(), group.size()),
              buf);
          comm.send<std::uint8_t>(
              1, kTagBatchRequest,
              std::span<const std::uint8_t>(buf.data(), buf.size()));
          const auto reply = decode_batch_reply(
              comm.recv(1, batch_reply_tag(LookupKind::kKmer)).payload);
          benchmark::DoNotOptimize(reply.counts.data());
          ++row.messages;
          row.lookups += reply.counts.size();
        }
        row.seconds = clock.seconds();
        rows.push_back(row);
      }
      comm.signal_done();
    }
    comm.barrier();
  }, [] {
    rtm::RunOptions options;
    options.check.enabled = false;  // benchmark: no rtm-check hooks
    return options;
  }());
  return rows;
}

void report_remote_lookups() {
  std::printf("\n--- remote lookups: scalar request/reply vs batched "
              "(batch_lookups wire path) ---\n");
  const auto rows = measure_remote_lookups(20000, {16, 64, 256, 1024});
  const double scalar_ns =
      rows.front().seconds * 1e9 / static_cast<double>(rows.front().lookups);
  stats::TextTable table(
      {"mode", "batch_size", "lookups", "messages", "ns/lookup", "speedup"});
  stats::RunReport report("microbench_remote_lookups");
  for (const auto& r : rows) {
    const double ns =
        r.seconds * 1e9 / static_cast<double>(std::max<std::size_t>(r.lookups, 1));
    table.row()
        .cell(r.batch_size == 1 ? "scalar" : "batched")
        .cell(r.batch_size)
        .cell(r.lookups)
        .cell(r.messages)
        .cell_fixed(ns, 1)
        .cell_fixed(scalar_ns / ns, 2);
    report.record()
        .add("batch_size", static_cast<double>(r.batch_size))
        .add("lookups", static_cast<double>(r.lookups))
        .add("messages", static_cast<double>(r.messages))
        .add("seconds", r.seconds)
        .add("ns_per_lookup", ns);
  }
  table.print(std::cout);
  std::printf("%s\n", report.to_json().c_str());
}

// --- BENCH_rtm.json: the rtm runtime's recorded perf baseline ---------------
//
// Written by `microbench --rtm-json=PATH` and diffed against the checked-in
// bench/baselines/BENCH_rtm.json by tools/bench_gate.py in CI. The gate only
// compares machine-independent fields — the fast/locked REDUCTION ratios and
// the exact message/byte counts of the seeded workloads; absolute
// nanoseconds are recorded for the trajectory but never gated.

/// Single-thread push/try_pop round trips through one mailbox; the purest
/// view of the per-message mailbox cost on each path.
double mailbox_loop_ns(bool fast, std::size_t iters) {
  rtm::Mailbox mb;
  mb.set_fast_path(fast);
  stats::Stopwatch clock;
  for (std::size_t i = 0; i < iters; ++i) {
    mb.push(rtm::Message::of_value(0, 1, static_cast<std::uint64_t>(i)));
    benchmark::DoNotOptimize(mb.try_pop(0, 1));
  }
  return clock.seconds() * 1e9 / static_cast<double>(iters);
}

struct PingPongResult {
  double ns_per_msg = 0;
  std::uint64_t msgs = 0;
  std::uint64_t bytes = 0;
  rtm::MailboxStats mailbox;  ///< rank 1's (the echo side's) path counters
};

/// Two-rank blocking ping-pong through the full send/recv stack (arena
/// payloads, traffic counters, blocked receives) — the realistic
/// per-message cost including the wakeup machinery.
PingPongResult pingpong(bool fast, int rounds) {
  rtm::RunOptions options;
  options.check.enabled = false;
  options.mailbox_fast_path = fast;
  PingPongResult res;
  double seconds = 0;
  auto world = rtm::run_world(
      {2, 1},
      [&](rtm::Comm& comm) {
        comm.barrier();  // exclude thread spawn from the timed window
        stats::Stopwatch clock;
        if (comm.rank() == 0) {
          for (int i = 0; i < rounds; ++i) {
            comm.send_value(1, 3, static_cast<std::uint64_t>(i));
            benchmark::DoNotOptimize(comm.recv(1, 4));
          }
          seconds = clock.seconds();
        } else {
          for (int i = 0; i < rounds; ++i) {
            const rtm::Message m = comm.recv(0, 3);
            comm.send_value(0, 4, m.as_value<std::uint64_t>());
          }
        }
        comm.barrier();
      },
      options);
  res.ns_per_msg = seconds * 1e9 / (2.0 * rounds);
  const auto t0 = world->traffic().snapshot(0);
  const auto t1 = world->traffic().snapshot(1);
  res.msgs = t0.sent_msgs() + t1.sent_msgs();
  res.bytes = t0.sent_bytes() + t1.sent_bytes();
  res.mailbox = world->mailbox(1).stats();
  return res;
}

struct RttResult {
  std::uint64_t lookups = 0;
  std::uint64_t msgs = 0;
  std::uint64_t bytes = 0;
  obs::HistogramSummary rtt;      ///< reptile_lookup_rtt_us, requester rank
  obs::HistogramSummary wait;     ///< reptile_mailbox_wait_us, requester rank
};

/// Scalar remote lookups against a live LookupService with the obs registry
/// armed: populates the lookup-RTT and mailbox-wait histograms the baseline
/// records its latency quantiles from.
RttResult measure_lookup_rtt(std::size_t lookups) {
  using namespace reptile::parallel;
  seq::DatasetSpec spec{"rtm_rtt", 2000, 70, 4000};
  const auto ds = seq::SyntheticDataset::generate(spec, {}, 97);
  core::CorrectorParams params;
  params.k = 12;
  params.tile_overlap = 4;

  obs::Registry::global().configure(true);
  RttResult res;
  res.lookups = lookups;
  auto world = rtm::run_world(
      {2, 1},
      [&](rtm::Comm& comm) {
        DistSpectrum spectrum(params, Heuristics{}, comm);
        if (comm.rank() == 1) {
          for (const auto& r : ds.reads) spectrum.add_read(r.bases);
        }
        spectrum.exchange_to_owners();
        if (comm.rank() == 1) {
          std::vector<std::uint64_t> owned;
          spectrum.hash_kmers().for_each(
              [&](std::uint64_t id, std::uint32_t) { owned.push_back(id); });
          comm.send<std::uint64_t>(
              0, 97, std::span<const std::uint64_t>(owned.data(), owned.size()));
          comm.reset_done();
          LookupService service(comm, spectrum);
          std::thread server([&service] { service.serve(); });
          comm.signal_done();
          server.join();
        } else {
          const auto ids = comm.recv(1, 97).as<std::uint64_t>();
          comm.reset_done();
          RemoteSpectrumView view(comm, spectrum);
          for (std::size_t i = 0; i < lookups; ++i) {
            benchmark::DoNotOptimize(view.kmer_count(ids[i % ids.size()]));
          }
          comm.signal_done();
        }
        comm.barrier();
      },
      [] {
        rtm::RunOptions options;
        options.check.enabled = false;
        return options;
      }());
  const auto t0 = world->traffic().snapshot(0);
  const auto t1 = world->traffic().snapshot(1);
  res.msgs = t0.sent_msgs() + t1.sent_msgs();
  res.bytes = t0.sent_bytes() + t1.sent_bytes();
  res.rtt = obs::Registry::global().histogram_summary("reptile_lookup_rtt_us", 0);
  res.wait =
      obs::Registry::global().histogram_summary("reptile_mailbox_wait_us", 0);
  obs::Registry::global().configure(false);
  return res;
}

void write_histogram_json(std::ofstream& out, const char* key,
                          const obs::HistogramSummary& h, const char* indent) {
  out << indent << "\"" << key << "\": {\"count\": " << h.count
      << ", \"p50_us\": " << h.p50 << ", \"p99_us\": " << h.p99
      << ", \"max_us\": " << h.max << "}";
}

int emit_rtm_json(const std::string& path) {
  constexpr std::size_t kLoopIters = 200000;
  constexpr int kPingPongRounds = 20000;
  constexpr std::size_t kRttLookups = 5000;
  const auto best_of = [](int reps, const auto& fn) {
    double best = 1e300;
    for (int i = 0; i < reps; ++i) best = std::min(best, fn());
    return best;
  };

  std::printf("\n--- rtm runtime baseline (BENCH_rtm.json) ---\n");
  (void)mailbox_loop_ns(true, kLoopIters / 4);  // warm up allocators
  const double locked_loop_ns =
      best_of(3, [&] { return mailbox_loop_ns(false, kLoopIters); });
  const double fast_loop_ns =
      best_of(3, [&] { return mailbox_loop_ns(true, kLoopIters); });
  const double loop_reduction =
      100.0 * (locked_loop_ns - fast_loop_ns) / locked_loop_ns;

  PingPongResult locked_pp;
  PingPongResult fast_pp;
  locked_pp.ns_per_msg = 1e300;
  fast_pp.ns_per_msg = 1e300;
  for (int i = 0; i < 3; ++i) {
    PingPongResult r = pingpong(false, kPingPongRounds);
    if (r.ns_per_msg < locked_pp.ns_per_msg) locked_pp = r;
    r = pingpong(true, kPingPongRounds);
    if (r.ns_per_msg < fast_pp.ns_per_msg) fast_pp = r;
  }
  const double pp_reduction = 100.0 *
                              (locked_pp.ns_per_msg - fast_pp.ns_per_msg) /
                              locked_pp.ns_per_msg;
  const RttResult rtt = measure_lookup_rtt(kRttLookups);

  std::printf("mailbox loop : locked %.1f ns/msg, fast %.1f ns/msg "
              "(%.1f%% reduction)\n",
              locked_loop_ns, fast_loop_ns, loop_reduction);
  std::printf("ping-pong    : locked %.1f ns/msg, fast %.1f ns/msg "
              "(%.1f%% reduction), %llu msgs, %llu bytes\n",
              locked_pp.ns_per_msg, fast_pp.ns_per_msg, pp_reduction,
              static_cast<unsigned long long>(fast_pp.msgs),
              static_cast<unsigned long long>(fast_pp.bytes));
  std::printf("lookup rtt   : p50 <= %llu us, p99 <= %llu us over %llu lookups\n",
              static_cast<unsigned long long>(rtt.rtt.p50),
              static_cast<unsigned long long>(rtt.rtt.p99),
              static_cast<unsigned long long>(rtt.lookups));

  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  out << "{\n";
  out << "  \"schema\": 1,\n";
  out << "  \"mailbox_loop\": {\"iters\": " << kLoopIters
      << ", \"locked_ns_per_msg\": " << locked_loop_ns
      << ", \"fast_ns_per_msg\": " << fast_loop_ns
      << ", \"reduction_pct\": " << loop_reduction << "},\n";
  out << "  \"pingpong\": {\"rounds\": " << kPingPongRounds
      << ", \"msgs\": " << fast_pp.msgs << ", \"bytes\": " << fast_pp.bytes
      << ", \"locked_ns_per_msg\": " << locked_pp.ns_per_msg
      << ", \"fast_ns_per_msg\": " << fast_pp.ns_per_msg
      << ", \"reduction_pct\": " << pp_reduction
      << ", \"fast_pushes\": " << fast_pp.mailbox.fast_pushes
      << ", \"locked_run_fast_pushes\": " << locked_pp.mailbox.fast_pushes
      << "},\n";
  out << "  \"lookup\": {\"lookups\": " << rtt.lookups
      << ", \"msgs\": " << rtt.msgs << ", \"bytes\": " << rtt.bytes << "},\n";
  write_histogram_json(out, "lookup_rtt_us", rtt.rtt, "  ");
  out << ",\n";
  write_histogram_json(out, "mailbox_wait_us", rtt.wait, "  ");
  out << "\n}\n";
  return out ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  // --rtm-json=PATH is ours, not google-benchmark's: strip it before
  // Initialize so ReportUnrecognizedArguments stays clean.
  std::string rtm_json;
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    constexpr const char* kFlag = "--rtm-json=";
    if (std::strncmp(argv[i], kFlag, std::strlen(kFlag)) == 0) {
      rtm_json = argv[i] + std::strlen(kFlag);
    } else {
      argv[kept++] = argv[i];
    }
  }
  argc = kept;
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (!rtm_json.empty()) return emit_rtm_json(rtm_json);
  report_remote_lookups();
  return 0;
}
