// Micro-benchmarks of the substrate data structures (google-benchmark).
//
// Includes the paper's Section II design contrast: Jammula et al. store the
// spectrum as sorted arrays searched by repeated binary search (improved to
// a cache-aware layout); this implementation uses hash tables instead,
// "prevent[ing] any need for sorting the arrays or for repeated binary
// searches". BM_SpectrumLookup_* quantifies that choice.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <vector>

#include "core/corrector.hpp"
#include "core/spectrum.hpp"
#include "hash/bloom_filter.hpp"
#include "hash/count_table.hpp"
#include "hash/sorted_spectrum.hpp"
#include "rtm/mailbox.hpp"
#include "seq/dataset.hpp"
#include "seq/kmer.hpp"
#include "seq/rng.hpp"

namespace {

using namespace reptile;

std::vector<std::uint64_t> random_keys(std::size_t n, std::uint64_t seed) {
  seq::Rng rng(seed);
  std::vector<std::uint64_t> keys(n);
  for (auto& k : keys) k = rng.next();
  return keys;
}

// --- hash table vs sorted-array binary search (paper Section II-B) --------

void BM_SpectrumLookup_HashTable(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto keys = random_keys(n, 1);
  hash::CountTable<> table(n);
  for (auto k : keys) table.increment(k, 3);
  const auto probes = random_keys(n, 2);  // ~all misses, like candidate tiles
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.find(keys[i % n]));
    benchmark::DoNotOptimize(table.find(probes[i % n]));
    ++i;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 2);
}
BENCHMARK(BM_SpectrumLookup_HashTable)->Arg(1 << 14)->Arg(1 << 18)->Arg(1 << 22);

void BM_SpectrumLookup_SortedArray(benchmark::State& state) {
  // Shah et al.'s layout: (id, count) pairs sorted by id, binary search.
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto keys = random_keys(n, 1);
  std::vector<std::pair<std::uint64_t, std::uint32_t>> entries;
  entries.reserve(n);
  for (auto k : keys) entries.emplace_back(k, 3);
  const auto table = hash::SortedCountArray::from_entries(std::move(entries));
  const auto probes = random_keys(n, 2);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.find(keys[i % n]));
    benchmark::DoNotOptimize(table.find(probes[i % n]));
    ++i;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 2);
}
BENCHMARK(BM_SpectrumLookup_SortedArray)
    ->Arg(1 << 14)
    ->Arg(1 << 18)
    ->Arg(1 << 22);

void BM_SpectrumLookup_CacheAware(benchmark::State& state) {
  // Jammula et al.'s improvement: (B+1)-ary cache-line-blocked layout,
  // O(log_{B+1} N) cache misses per search.
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto keys = random_keys(n, 1);
  std::vector<std::pair<std::uint64_t, std::uint32_t>> entries;
  entries.reserve(n);
  for (auto k : keys) entries.emplace_back(k, 3);
  const auto table =
      hash::CacheAwareCountArray::from_entries(std::move(entries));
  const auto probes = random_keys(n, 2);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.find(keys[i % n]));
    benchmark::DoNotOptimize(table.find(probes[i % n]));
    ++i;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 2);
}
BENCHMARK(BM_SpectrumLookup_CacheAware)
    ->Arg(1 << 14)
    ->Arg(1 << 18)
    ->Arg(1 << 22);

// --- construction-side primitives ------------------------------------------

void BM_CountTableInsert(benchmark::State& state) {
  const auto keys = random_keys(1 << 16, 3);
  for (auto _ : state) {
    hash::CountTable<> table;
    for (auto k : keys) table.increment(k);
    benchmark::DoNotOptimize(table.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          (1 << 16));
}
BENCHMARK(BM_CountTableInsert);

void BM_KmerExtraction(benchmark::State& state) {
  seq::DatasetSpec spec{"bench", 200, 102, 10000};
  const auto ds = seq::SyntheticDataset::generate(spec, {}, 4);
  const seq::KmerCodec codec(12);
  std::vector<seq::kmer_id_t> out;
  for (auto _ : state) {
    out.clear();
    for (const auto& r : ds.reads) codec.extract(r.bases, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(200 * (102 - 12 + 1)));
}
BENCHMARK(BM_KmerExtraction);

void BM_BloomFilterInsert(benchmark::State& state) {
  const auto keys = random_keys(1 << 16, 5);
  for (auto _ : state) {
    hash::BloomFilter bf(1 << 16, 0.01);
    for (auto k : keys) benchmark::DoNotOptimize(bf.insert(k));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          (1 << 16));
}
BENCHMARK(BM_BloomFilterInsert);

// --- correction throughput ---------------------------------------------------

void BM_CorrectRead(benchmark::State& state) {
  core::CorrectorParams params;
  params.k = 12;
  params.tile_overlap = 4;
  seq::DatasetSpec spec{"bench", 3000, 102, 4000};
  seq::ErrorModelParams errors;
  errors.error_rate_start = 0.003;
  errors.error_rate_end = 0.01;
  const auto ds = seq::SyntheticDataset::generate(spec, errors, 6);
  core::LocalSpectrum spectrum(params);
  for (const auto& r : ds.reads) spectrum.add_read(r.bases);
  spectrum.prune();
  core::TileCorrector corrector(params);
  std::size_t i = 0;
  for (auto _ : state) {
    seq::Read copy = ds.reads[i % ds.reads.size()];
    benchmark::DoNotOptimize(corrector.correct(copy, spectrum));
    ++i;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_CorrectRead);

// --- messaging ----------------------------------------------------------------

void BM_MailboxPushPop(benchmark::State& state) {
  rtm::Mailbox mb;
  for (auto _ : state) {
    mb.push(rtm::Message::of_value(0, 1, std::uint64_t{42}));
    benchmark::DoNotOptimize(mb.try_pop(0, 1));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_MailboxPushPop);

}  // namespace

BENCHMARK_MAIN();
