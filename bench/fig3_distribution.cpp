// Figure 3: k-mer and tile count of each rank for 128 processes (E.Coli).
//
// Paper finding: the hash-based ownership spreads the spectrum almost
// perfectly — "the variation between the ranks having the highest and the
// lowest number of k-mers is less than 1%, with the variation in the number
// of tiles slightly less than 2%".
//
// This bench computes the distribution EXACTLY (not modeled): it extracts
// the spectrum of the scaled E.Coli replica and buckets every distinct
// k-mer/tile by its owning rank, as Step II/III would.

#include <cstdio>
#include <iostream>
#include <vector>

#include "bench/common.hpp"
#include "core/spectrum.hpp"
#include "hash/count_table.hpp"
#include "hash/hashing.hpp"
#include "seq/rng.hpp"
#include "stats/summary.hpp"

int main(int argc, char** argv) {
  using namespace reptile;
  if (bench::parse_trace_args(argc, argv).enabled) {
    std::printf("note: --trace accepted for CLI uniformity, but this driver "
                "only runs the performance model (no runtime to trace)\n");
  }
  bench::print_header(
      "Figure 3 — k-mer and tile count per rank, 128 ranks (E.Coli)",
      "k-mer spread < 1%, tile spread < 2% across ranks");

  constexpr int kRanks = 128;
  // A bigger replica keeps per-rank counts statistically tight, as the
  // full dataset would be.
  const auto ds = bench::scaled_replica(seq::DatasetSpec::ecoli(), 20000, 3);
  const auto params = bench::bench_params();

  core::LocalSpectrum spectrum(params);
  for (const auto& r : ds.reads) spectrum.add_read(r.bases);
  spectrum.prune();

  std::vector<std::uint64_t> kmers_per_rank(kRanks, 0);
  std::vector<std::uint64_t> tiles_per_rank(kRanks, 0);
  spectrum.kmers().for_each([&](std::uint64_t id, std::uint32_t) {
    ++kmers_per_rank[static_cast<std::size_t>(hash::owner_of(id, kRanks))];
  });
  spectrum.tiles().for_each([&](std::uint64_t id, std::uint32_t) {
    ++tiles_per_rank[static_cast<std::size_t>(hash::owner_of(id, kRanks))];
  });

  const auto ks = stats::summarize(
      std::span<const std::uint64_t>(kmers_per_rank));
  const auto ts = stats::summarize(
      std::span<const std::uint64_t>(tiles_per_rank));

  stats::TextTable table(
      {"spectrum", "total entries", "min/rank", "mean/rank", "max/rank",
       "spread %"});
  table.row()
      .cell("k-mers")
      .cell(spectrum.kmer_entries())
      .cell(static_cast<std::uint64_t>(ks.min))
      .cell_fixed(ks.mean, 1)
      .cell(static_cast<std::uint64_t>(ks.max))
      .cell_fixed(100.0 * ks.relative_spread(), 2);
  table.row()
      .cell("tiles")
      .cell(spectrum.tile_entries())
      .cell(static_cast<std::uint64_t>(ts.min))
      .cell_fixed(ts.mean, 1)
      .cell(static_cast<std::uint64_t>(ts.max))
      .cell_fixed(100.0 * ts.relative_spread(), 2);
  table.print(std::cout);

  std::printf("\nper-rank counts (first 16 ranks of %d):\n", kRanks);
  stats::TextTable rows({"rank", "k-mers", "tiles"});
  for (int r = 0; r < 16; ++r) {
    rows.row()
        .cell(r)
        .cell(kmers_per_rank[static_cast<std::size_t>(r)])
        .cell(tiles_per_rank[static_cast<std::size_t>(r)]);
  }
  rows.print(std::cout);
  std::printf(
      "\nThe replica's per-rank means are ~1000x smaller than the full\n"
      "dataset's, so the statistical spread is correspondingly wider than\n"
      "the paper's <1%%. The spread at FULL scale depends only on how the\n"
      "ownership hash buckets that many distinct IDs:\n\n");

  // Full-scale projection: the full E.Coli spectrum holds ~9M distinct
  // k-mers (genome-scale) — bucket that many distinct IDs by the actual
  // ownership function and report the spread the paper's Fig. 3 shows.
  const std::uint64_t full_kmers = 9'000'000;
  const std::uint64_t full_tiles = 4'000'000;
  seq::Rng rng(17);
  auto project = [&](std::uint64_t n) {
    std::vector<std::uint64_t> counts(kRanks, 0);
    for (std::uint64_t i = 0; i < n; ++i) {
      ++counts[static_cast<std::size_t>(hash::owner_of(rng.next(), kRanks))];
    }
    return stats::summarize(std::span<const std::uint64_t>(counts));
  };
  const auto pk = project(full_kmers);
  const auto pt = project(full_tiles);
  stats::TextTable proj({"spectrum (projected full scale)", "mean/rank",
                         "spread %", "paper"});
  proj.row()
      .cell("k-mers")
      .cell_fixed(pk.mean, 0)
      .cell_fixed(100.0 * pk.relative_spread(), 2)
      .cell("< 1%");
  proj.row()
      .cell("tiles")
      .cell_fixed(pt.mean, 0)
      .cell_fixed(100.0 * pt.relative_spread(), 2)
      .cell("< 2%");
  proj.print(std::cout);
  return 0;
}
