// Figure 2: 128 ranks for the E.Coli dataset, varying ranks per node
// (8/16/32, i.e. 16/8/4 nodes).
//
// Paper findings to reproduce:
//   - 32 ranks/node is ~30% slower than 8 ranks/node;
//   - most of the increase comes from communication;
//   - k-mer construction time is a negligible fraction of correction;
//   - most communication time is tile traffic, mostly for tiles that do
//     not exist in the spectrum.

#include <cstdio>
#include <iostream>

#include "bench/common.hpp"

int main(int argc, char** argv) {
  using namespace reptile;
  if (bench::parse_trace_args(argc, argv).enabled) {
    std::printf("note: --trace accepted for CLI uniformity, but this driver "
                "only runs the performance model (no runtime to trace)\n");
  }
  bench::print_header(
      "Figure 2 — execution time of 128 ranks, 4 to 16 nodes (E.Coli)",
      "32 ranks/node ~30% slower than 8; slowdown dominated by communication");

  const auto full = seq::DatasetSpec::ecoli();
  const auto traits = bench::bench_traits(full);
  const auto machine = perfmodel::MachineModel::bluegene_q();
  parallel::Heuristics heur;  // balanced base mode

  constexpr int kRanks = 128;
  stats::TextTable table({"ranks/node", "nodes", "construct s", "compute s",
                          "comm k-mer s", "comm tile s", "total s",
                          "vs 8/node"});
  double base_total = 0;
  for (int rpn : {8, 16, 32}) {
    const auto run =
        perfmodel::model_run(machine, traits, full, kRanks, rpn, heur);
    if (rpn == 8) base_total = run.total_seconds();
    double compute = 0, comm_k = 0, comm_t = 0;
    for (const auto& r : run.ranks) {
      compute = std::max(compute, r.compute_seconds);
      comm_k = std::max(comm_k, r.comm_kmer_seconds);
      comm_t = std::max(comm_t, r.comm_tile_seconds);
    }
    table.row()
        .cell(rpn)
        .cell(kRanks / rpn)
        .cell_fixed(run.construct_seconds(), 1)
        .cell_fixed(compute, 1)
        .cell_fixed(comm_k, 1)
        .cell_fixed(comm_t, 1)
        .cell_fixed(run.total_seconds(), 1)
        .cell_fixed(run.total_seconds() / base_total, 2);
  }
  table.print(std::cout);

  // The tile-vs-kmer traffic split behind "most of the communication time
  // is spent in communication of tiles".
  const auto workload = perfmodel::synthesize_workload(
      traits, full, kRanks, 32, heur);
  double rk = 0, rt = 0;
  for (const auto& w : workload) {
    rk += w.remote_kmer_lookups;
    rt += w.remote_tile_lookups;
  }
  const auto avg = traits.average();
  const double miss_share =
      avg.tile_lookups == 0
          ? 0
          : 1.0 - avg.tile_checks / avg.tile_lookups;  // candidate lookups
  std::printf(
      "\nremote lookups at 32 ranks/node: %.1fM tiles vs %.1fM k-mers "
      "(tiles %.0f%%)\n",
      rt / 1e6, rk / 1e6, 100.0 * rt / (rt + rk));
  std::printf(
      "share of tile lookups that are candidate probes (mostly absent "
      "tiles): %.0f%%\n",
      100.0 * miss_share);
  return 0;
}
