// Table I: the three evaluation datasets.
//
// Prints the paper's dataset table (reads, length, genome size, coverage)
// alongside the scaled synthetic replicas this reproduction actually
// generates, with their measured error content.

#include <cinttypes>
#include <cstdio>
#include <iostream>

#include "bench/common.hpp"

int main(int argc, char** argv) {
  using namespace reptile;
  if (bench::parse_trace_args(argc, argv).enabled) {
    std::printf("note: --trace accepted for CLI uniformity, but this driver "
                "only runs the performance model (no runtime to trace)\n");
  }
  bench::print_header(
      "Table I — E.Coli, Drosophila and Human datasets",
      "8.87M/95.7M/1549M reads; 102/96/102 chars; 96X/75X/47X coverage");

  stats::TextTable table({"genome", "reads", "length", "genome size",
                          "coverage (label)", "coverage (computed)"});
  for (const auto& spec : seq::DatasetSpec::table1()) {
    table.row()
        .cell(spec.name)
        .cell(spec.n_reads)
        .cell(spec.read_length)
        .cell(spec.genome_size)
        .cell_fixed(spec.nominal_coverage, 0)
        .cell_fixed(spec.coverage(), 1);
  }
  table.print(std::cout);
  std::printf(
      "\nnote: Table I's own E.Coli numbers give 196.8X, not the printed "
      "96X\n(the printed figure matches about half the reads; see "
      "DatasetSpec docs).\n\n");

  std::printf("scaled synthetic replicas used by the benches "
              "(geometry-preserving):\n");
  stats::TextTable replicas({"replica of", "reads", "length", "genome size",
                             "coverage", "errors injected", "erroneous reads"});
  for (const auto& full : seq::DatasetSpec::table1()) {
    const auto ds = bench::scaled_replica(full, 4000, 1);
    replicas.row()
        .cell(full.name)
        .cell(ds.spec.n_reads)
        .cell(ds.spec.read_length)
        .cell(ds.spec.genome_size)
        .cell_fixed(ds.spec.coverage(), 1)
        .cell(ds.total_errors)
        .cell(ds.erroneous_reads());
  }
  replicas.print(std::cout);
  return 0;
}
