// Figure 7: Drosophila strong scaling, 32 to 512 nodes.
//
// Paper findings to reproduce:
//   - excellent scalability from 1024 to 8192+ ranks (32 ranks/node);
//   - parallel efficiency 0.64 at 8192 ranks;
//   - load balancing improves runtime by more than 7x at 8192 ranks, and
//     the imbalanced runs at the lowest rank counts "did not finish in a
//     reasonable time";
//   - the 1024-rank run used the batch-reads heuristic, which pushes k-mer
//     construction to 981 s but keeps the construction footprint low.

#include <cstdio>
#include <iostream>

#include "bench/common.hpp"

int main(int argc, char** argv) {
  using namespace reptile;
  const auto args = bench::parse_bench_args(argc, argv);
  if (args.trace.enabled) {
    std::printf("note: --trace accepted for CLI uniformity, but this driver "
                "only runs the performance model (no runtime to trace)\n");
  }
  bench::print_header(
      "Figure 7 — Drosophila scaling, 32-512 nodes (32 ranks/node)",
      "efficiency 0.64 at 8192 ranks; balancing >7x at 8192 ranks; "
      "imbalanced low-rank runs DNF");

  const auto full = seq::DatasetSpec::drosophila();
  // The Drosophila profile (bench_errors_for): cleaner reads overall but
  // errors concentrated in fewer, hotter file regions — the paper's
  // imbalanced Drosophila runs never finished.
  const auto traits = bench::bench_traits(full);
  const auto machine = perfmodel::MachineModel::bluegene_q();
  constexpr int kRanksPerNode = 32;

  parallel::Heuristics balanced;
  balanced.batch_reads = true;  // as the paper's 1024-rank run
  parallel::Heuristics imbalanced;
  imbalanced.load_balance = false;
  imbalanced.batch_reads = true;

  stats::TextTable table({"nodes", "ranks", "construct s", "correct s",
                          "total s", "imbalanced total s", "balance gain",
                          "MB/rank", "efficiency"});
  perfmodel::RunEstimate baseline;
  std::vector<bench::ScalingModeledRow> modeled_rows;
  for (int nodes : {32, 64, 128, 256, 512}) {
    const int np = nodes * kRanksPerNode;
    const auto run =
        perfmodel::model_run(machine, traits, full, np, kRanksPerNode, balanced);
    const auto imb = perfmodel::model_run(machine, traits, full, np,
                                          kRanksPerNode, imbalanced);
    if (baseline.ranks.empty()) baseline = run;
    const double gain = imb.total_seconds() / run.total_seconds();
    const double eff =
        perfmodel::RunEstimate::parallel_efficiency(baseline, run);
    table.row()
        .cell(nodes)
        .cell(np)
        .cell_fixed(run.construct_seconds(), 1)
        .cell_fixed(run.correct_seconds(), 1)
        .cell_fixed(run.total_seconds(), 1)
        .cell_fixed(imb.total_seconds(), 1)
        .cell_fixed(gain, 2)
        .cell_fixed(run.max_memory_mb(), 1)
        .cell_fixed(eff, 2);
    modeled_rows.push_back({np, run.construct_seconds(), run.correct_seconds(),
                            run.total_seconds(), run.max_memory_mb(), eff});
  }
  table.print(std::cout);

  std::printf(
      "\nshape checks vs paper: the balance gain stays large (paper: >7x at\n"
      "8192 ranks; the imbalanced 32/64-node runs would run for many hours —\n"
      "the paper aborted them). Efficiency declines with scale as the\n"
      "per-rank work shrinks against fixed communication overheads.\n");

  // This driver is modeled-only: functional section empty, every modeled
  // number warn-only in the bench gate.
  if (!args.json_path.empty() &&
      !bench::write_scaling_json(args.json_path, "fig7", {}, modeled_rows)) {
    return 1;
  }
  return 0;
}
