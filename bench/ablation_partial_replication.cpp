// Ablation: partial replication (the paper's Section V future-work idea).
//
// "One potential strategy is for each rank to store the k-mers and tiles of
// a subset of other ranks, besides the k-mers and the tiles the rank owns.
// This would allow the memory footprint to be low enough for a complete
// execution and reduce the communication overhead, which could enable a
// faster runtime."
//
// This bench sweeps the replication-group size for E.Coli at 1024 ranks /
// 32 per node and shows exactly that trade: remote traffic (and modeled
// time) falls as the group grows, memory rises g-fold, and node-sized
// groups (g = ranks/node) are the sweet spot — group traffic rides the
// shared-memory transport anyway. A second table ablates the Bloom-filter
// construction mode against exact counting.

#include <cstdio>
#include <iostream>

#include "bench/common.hpp"

int main(int argc, char** argv) {
  using namespace reptile;
  const auto trace = bench::parse_trace_args(argc, argv);
  bench::print_header(
      "Ablation — partial replication (paper Section V) and Bloom "
      "construction",
      "future work: replicate a subset of ranks' spectra to cut "
      "communication at bounded memory");

  const auto full = seq::DatasetSpec::ecoli();
  const auto traits = bench::bench_traits(full);
  const auto machine = perfmodel::MachineModel::bluegene_q();
  constexpr int kRanks = 1024;
  constexpr int kRanksPerNode = 32;

  stats::TextTable table({"group size", "remote lookups/rank (M)",
                          "correct s", "comm s", "MB/rank", "vs g=1"});
  double base_total = 0;
  for (int group : {1, 32, 128, 256, 512, 1024}) {
    parallel::Heuristics heur;
    heur.partial_replication_group = group;
    const auto workload = perfmodel::synthesize_workload(
        traits, full, kRanks, kRanksPerNode, heur);
    const auto run = perfmodel::estimate_run(machine, workload, kRanksPerNode,
                                             heur, traits.params.chunk_size);
    if (group == 1) base_total = run.correct_seconds();
    table.row()
        .cell(group)
        .cell_fixed(workload[0].remote_lookups() / 1e6, 2)
        .cell_fixed(run.correct_seconds(), 1)
        .cell_fixed(run.max_comm_seconds(), 1)
        .cell_fixed(run.max_memory_mb(), 1)
        .cell_fixed(run.correct_seconds() / base_total, 2);
  }
  table.print(std::cout);
  std::printf(
      "\nnote: remote traffic falls by g/np while replica memory grows by\n"
      "g x owned-shard — the dial Section V proposes (\"only lower the\n"
      "memory footprint as much as needed\"): with 512 MB/rank to spend, a\n"
      "large group buys back much of the full-replication speedup at a\n"
      "fraction of its footprint. g=1024 equals full replication.\n");

  // --- functional cross-check ------------------------------------------------
  std::printf("\nfunctional cross-check (8 ranks, measured):\n");
  const auto ds = bench::scaled_replica(full, 2000, 7);
  parallel::DistConfig config;
  config.params = bench::bench_params();
  config.trace = trace;
  config.run_options.check.enabled = false;  // benchmark: no rtm-check hooks
  config.params.chunk_size = 256;
  config.ranks = 8;
  config.ranks_per_node = 4;
  stats::TextTable fn({"group size", "remote lookups", "group-table hits",
                       "peak MB (max rank)", "identical output"});
  std::vector<seq::Read> reference;
  for (int group : {1, 2, 4, 8}) {
    config.heuristics.partial_replication_group = group;
    const auto result = parallel::run_distributed(ds.reads, config);
    if (reference.empty()) reference = result.corrected;
    std::uint64_t remote = 0, hits = 0;
    std::size_t peak = 0;
    for (const auto& r : result.ranks) {
      remote += r.remote.remote_lookups();
      hits += r.remote.group_lookups;
      peak = std::max(peak, r.footprint_after_correction.bytes);
    }
    fn.row()
        .cell(group)
        .cell(remote)
        .cell(hits)
        .cell_fixed(static_cast<double>(peak) / (1 << 20), 2)
        .cell(result.corrected == reference ? "yes" : "NO");
  }
  fn.print(std::cout);

  // --- Bloom-filter construction ablation -------------------------------------
  std::printf("\nBloom-filter construction (paper Step III note), modeled "
              "at 1024 ranks:\n");
  stats::TextTable bloom({"construction", "construction peak MB/rank",
                          "steady MB/rank"});
  for (const bool use_bloom : {false, true}) {
    parallel::Heuristics heur;
    heur.bloom_construction = use_bloom;
    const auto workload = perfmodel::synthesize_workload(
        traits, full, kRanks, kRanksPerNode, heur);
    bloom.row()
        .cell(use_bloom ? "bloom (approximate)" : "exact")
        .cell_fixed(workload[0].construction_peak_bytes / (1 << 20), 2)
        .cell_fixed(workload[0].spectrum_bytes / (1 << 20), 2);
  }
  bloom.print(std::cout);
  return 0;
}
