// Figure 6: E.Coli strong scaling, 32 to 256 nodes (1024 to 8192 ranks).
//
// Paper findings to reproduce:
//   - both k-mer construction and error correction scale;
//   - parallel efficiency 0.81 at 8192 ranks (vs 1024);
//   - error-correction time ~180 s at 8192 ranks, total < 200 s at 256
//     nodes with load balancing;
//   - the imbalanced runtime is much worse at low node counts (the 32-node
//     runtime "more than halves" with balancing).

#include <cstdio>
#include <iostream>

#include "bench/common.hpp"

int main(int argc, char** argv) {
  using namespace reptile;
  const auto args = bench::parse_bench_args(argc, argv);
  bench::print_header(
      "Figure 6 — E.Coli scaling, 32-256 nodes (32 ranks/node)",
      "efficiency 0.81 at 8192 ranks; <200 s total at 256 nodes; balancing "
      ">=2x at 32 nodes");

  const auto full = seq::DatasetSpec::ecoli();
  const auto traits = bench::bench_traits(full);
  const auto machine = perfmodel::MachineModel::bluegene_q();
  constexpr int kRanksPerNode = 32;

  parallel::Heuristics balanced;
  parallel::Heuristics imbalanced;
  imbalanced.load_balance = false;

  stats::TextTable table({"nodes", "ranks", "construct s", "correct s",
                          "total s", "imbalanced total s", "balance gain",
                          "MB/rank", "efficiency"});
  perfmodel::RunEstimate baseline;
  std::vector<bench::ScalingModeledRow> modeled_rows;
  for (int nodes : {32, 64, 128, 256}) {
    const int np = nodes * kRanksPerNode;
    const auto run =
        perfmodel::model_run(machine, traits, full, np, kRanksPerNode, balanced);
    const auto imb = perfmodel::model_run(machine, traits, full, np,
                                          kRanksPerNode, imbalanced);
    if (baseline.ranks.empty()) baseline = run;
    const double eff =
        perfmodel::RunEstimate::parallel_efficiency(baseline, run);
    table.row()
        .cell(nodes)
        .cell(np)
        .cell_fixed(run.construct_seconds(), 2)
        .cell_fixed(run.correct_seconds(), 1)
        .cell_fixed(run.total_seconds(), 1)
        .cell_fixed(imb.total_seconds(), 1)
        .cell_fixed(imb.total_seconds() / run.total_seconds(), 2)
        .cell_fixed(run.max_memory_mb(), 1)
        .cell_fixed(eff, 2);
    modeled_rows.push_back({np, run.construct_seconds(), run.correct_seconds(),
                            run.total_seconds(), run.max_memory_mb(), eff});
  }
  table.print(std::cout);

  std::printf(
      "\nshape checks vs paper: efficiency at 8192 ranks ~0.81; total at 256\n"
      "nodes under ~200 s; balancing gain largest at the smallest node "
      "count.\n");

  // Functional strong-scaling smoke test on the real runtime: wall time on
  // one host core is meaningless, so we check the *work* distribution
  // instead — remote lookups per rank shrink as ranks grow.
  std::printf("\nfunctional check (scaled replica, real runtime): remote "
              "lookups per rank\n");
  const auto ds = bench::scaled_replica(full, 2000, 21);
  parallel::DistConfig config;
  config.params = bench::bench_params();
  config.trace = args.trace;
  config.run_options.check.enabled = false;  // benchmark: no rtm-check hooks
  config.params.chunk_size = 256;
  config.ranks_per_node = 4;
  stats::TextTable fn({"ranks", "remote lookups (max rank)", "substitutions"});
  std::vector<bench::ScalingFunctionalRow> fn_rows;
  for (int ranks : {2, 4, 8, 16}) {
    config.ranks = ranks;
    const auto result = parallel::run_distributed(ds.reads, config);
    bench::ScalingFunctionalRow row;
    row.ranks = ranks;
    std::uint64_t reads_changed = 0;
    for (const auto& r : result.ranks) {
      row.max_remote_lookups =
          std::max(row.max_remote_lookups, r.remote.remote_lookups());
      row.construction_peak_bytes =
          std::max(row.construction_peak_bytes,
                   static_cast<std::uint64_t>(r.construction_peak_bytes));
      row.construct_seconds = std::max(row.construct_seconds,
                                       r.construct_seconds);
      row.correct_seconds = std::max(row.correct_seconds, r.correct_seconds);
      row.ledger_total_peak_bytes =
          std::max(row.ledger_total_peak_bytes, r.ledger_total_peak_bytes);
      row.rss_peak_bytes = std::max(row.rss_peak_bytes,
                                    r.ledger_rss_peak_bytes);
      reads_changed += r.reads_changed;
    }
    row.substitutions = result.total_substitutions();
    row.reads_changed = reads_changed;
    fn_rows.push_back(row);
    fn.row().cell(ranks).cell(row.max_remote_lookups).cell(row.substitutions);
  }
  fn.print(std::cout);

  // Machine-readable scaling trajectory for the CI bench gate: functional
  // counters are deterministic (exact-matched against
  // bench/baselines/BENCH_scaling.json); wall times and ledger/RSS peaks
  // are host-dependent (warn-only).
  if (!args.json_path.empty() &&
      !bench::write_scaling_json(args.json_path, "fig6", fn_rows,
                                 modeled_rows)) {
    return 1;
  }
  return 0;
}
