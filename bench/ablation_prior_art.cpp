// Ablation: this paper's distributed spectrum vs the prior art it replaces.
//
// Paper Sections I-II: "Previous approaches to parallelize Reptile have
// replicated the spectrums on each node which can be prohibitive in terms
// of memory needed for huge datasets. ... Error correction of datasets from
// RNA sequencing, population genetics and metagenomics can lead to ...
// k-mer spectrum sizes of over a terabyte. In such cases, replication of
// the k-mer and tile spectrum can be prohibitive."
//
// Two comparisons:
//  1. functional (8 ranks, measured): the replicated baseline (Shah/Jammula
//     style, dynamic master-worker allocation — implemented in
//     src/parallel/baseline_replicated) against the distributed pipeline;
//  2. modeled feasibility: full-spectrum size per Table I dataset against
//     the BlueGene/Q memory budget (512 MB/process, 16 GB/node), and the
//     minimum node count each approach needs — the paper's "only
//     requirement is ... the combined memory of all the nodes exceeds the
//     storage of the entire k-mer and tile spectrum".

#include <cmath>
#include <cstdio>
#include <iostream>

#include "bench/common.hpp"
#include "parallel/baseline_replicated.hpp"

int main(int argc, char** argv) {
  using namespace reptile;
  const auto trace = bench::parse_trace_args(argc, argv);
  bench::print_header(
      "Ablation — distributed spectrum vs prior-art replication",
      "replication per process/node hits the memory wall; distribution "
      "needs only combined memory");

  // --- functional comparison (measured) -------------------------------------
  const auto ds = bench::scaled_replica(seq::DatasetSpec::ecoli(), 2500, 13);
  auto params = bench::bench_params();
  params.chunk_size = 256;

  parallel::BaselineConfig baseline_config;
  baseline_config.params = params;
  baseline_config.ranks = 8;
  baseline_config.ranks_per_node = 4;
  baseline_config.work_chunk = 50;
  const auto baseline =
      parallel::run_replicated_baseline(ds.reads, baseline_config);

  parallel::DistConfig dist_config;
  dist_config.params = params;
  dist_config.trace = trace;
  dist_config.run_options.check.enabled = false;  // benchmark: no rtm-check hooks
  dist_config.ranks = 8;
  dist_config.ranks_per_node = 4;
  const auto dist = parallel::run_distributed(ds.reads, dist_config);

  const bool identical = baseline.corrected == dist.corrected;
  std::size_t baseline_bytes = 0, dist_bytes = 0;
  std::uint64_t dist_remote = 0;
  for (const auto& r : baseline.ranks) {
    baseline_bytes = std::max(baseline_bytes, r.spectrum_bytes);
  }
  for (const auto& r : dist.ranks) {
    dist_bytes = std::max(dist_bytes, r.footprint_after_correction.bytes);
    dist_remote += r.remote.remote_lookups();
  }

  stats::TextTable fn({"approach", "spectrum MB/rank", "remote lookups",
                       "work allocation", "output"});
  fn.row()
      .cell("replicated + dynamic master (prior art)")
      .cell_fixed(static_cast<double>(baseline_bytes) / (1 << 20), 2)
      .cell(0)
      .cell("demand-driven chunks")
      .cell("reference");
  fn.row()
      .cell("distributed spectrum (this paper)")
      .cell_fixed(static_cast<double>(dist_bytes) / (1 << 20), 2)
      .cell(dist_remote)
      .cell("static hash balance")
      .cell(identical ? "identical" : "DIFFERS (bug)");
  fn.print(std::cout);
  std::printf(
      "\nthe trade at 8 ranks: the prior art pays %0.1fx the memory to make\n"
      "correction communication-free; the paper pays %llu remote lookups to\n"
      "shrink per-rank memory with rank count.\n",
      static_cast<double>(baseline_bytes) /
          std::max<std::size_t>(1, dist_bytes),
      static_cast<unsigned long long>(dist_remote));

  // --- modeled feasibility at full scale -------------------------------------
  std::printf("\nfull-scale feasibility (modeled spectrum sizes, 512 MB per "
              "process, 16 GB per node, 32 ranks/node):\n");
  stats::TextTable table({"dataset", "unpruned spectrum GB", "pruned GB",
                          "per-process replication", "per-node replication",
                          "distributed: min nodes"});
  for (const auto& full : seq::DatasetSpec::table1()) {
    const auto traits = bench::bench_traits(full);
    const double genome_ratio =
        static_cast<double>(full.genome_size) /
        static_cast<double>(traits.measured_spec.genome_size);
    const double reads_ratio =
        static_cast<double>(full.n_reads) /
        static_cast<double>(traits.measured_spec.n_reads);
    const double bytes_per_entry = 13.0 * 1.6;
    const double kept =
        static_cast<double>(traits.kept_kmers + traits.kept_tiles) *
        genome_ratio * bytes_per_entry;
    const double dropped =
        static_cast<double>(traits.dropped_kmers + traits.dropped_tiles) *
        reads_ratio * bytes_per_entry;
    const double unpruned = kept + dropped;
    const double per_process_budget = 512.0 * (1 << 20);
    const double per_node_budget = 16.0 * (1 << 30);
    // Construction needs the unpruned table resident (batch mode bounds the
    // exchange buffers, not the owner tables), correction the pruned one.
    const int min_nodes = static_cast<int>(
        std::ceil(unpruned / per_node_budget));
    table.row()
        .cell(full.name)
        .cell_fixed(unpruned / (1 << 30), 2)
        .cell_fixed(kept / (1 << 30), 2)
        .cell(unpruned <= per_process_budget ? "feasible" : "INFEASIBLE")
        .cell(unpruned <= per_node_budget ? "feasible" : "INFEASIBLE")
        .cell(std::max(1, min_nodes));
  }
  table.print(std::cout);
  std::printf(
      "\nthe paper's point in one table: per-process replication already\n"
      "fails for Drosophila-scale data (the paper measured 928-1648 MB per\n"
      "rank for E.Coli), per-node replication fails for human-scale data,\n"
      "while the distributed spectrum only needs enough total nodes — any\n"
      "memory-per-node works.\n");
  return 0;
}
