// Ablation: correction accuracy vs coverage and spectrum threshold.
//
// Not a numbered figure of the parallelization paper, but the design
// context it inherits from the original Reptile (Yang, Dorman, Aluru 2010):
// tile-based correction is accurate when coverage comfortably exceeds the
// frequency threshold. This bench sweeps both knobs on an E.Coli-geometry
// replica and reports sensitivity/gain — the quantities DESIGN.md's
// threshold choices are judged by — plus the tile-vs-kmer accuracy
// argument (correcting at k-mer granularity has many more candidates).

#include <cstdio>
#include <iostream>

#include "bench/common.hpp"
#include "core/pipeline.hpp"
#include "stats/accuracy.hpp"

int main(int argc, char** argv) {
  using namespace reptile;
  if (bench::parse_trace_args(argc, argv).enabled) {
    std::printf("note: --trace accepted for CLI uniformity, but this driver "
                "runs the sequential corrector only (no runtime to trace)\n");
  }
  bench::print_header(
      "Ablation — accuracy vs coverage and threshold (sequential Reptile)",
      "tile-level correction needs coverage >> threshold; gain collapses "
      "when the spectrum is starved");

  seq::ErrorModelParams errors;
  errors.error_rate_start = 0.003;
  errors.error_rate_end = 0.01;

  // --- coverage sweep at threshold 3 ---------------------------------------
  stats::TextTable cov({"coverage", "reads", "errors", "sensitivity", "gain",
                        "false positives"});
  for (const int coverage : {10, 20, 40, 80, 160}) {
    seq::DatasetSpec spec{"cov", 0, 80, 4000};
    spec.n_reads = static_cast<std::uint64_t>(coverage) * spec.genome_size /
                   static_cast<std::uint64_t>(spec.read_length);
    const auto ds = seq::SyntheticDataset::generate(spec, errors, 100);
    auto params = bench::bench_params();
    params.chunk_size = 1024;
    const auto result = core::run_sequential(ds.reads, params);
    const auto acc =
        stats::score_correction(ds.reads, result.corrected, ds.truth);
    cov.row()
        .cell(coverage)
        .cell(ds.reads.size())
        .cell(ds.total_errors)
        .cell_fixed(acc.sensitivity(), 3)
        .cell_fixed(acc.gain(), 3)
        .cell(acc.false_positives);
  }
  cov.print(std::cout);

  // --- threshold sweep at fixed 80X coverage ---------------------------------
  std::printf("\nthreshold sweep at 80X coverage:\n");
  stats::TextTable thr({"threshold", "kept kmers", "sensitivity", "gain",
                        "false positives"});
  seq::DatasetSpec spec{"thr", 0, 80, 4000};
  spec.n_reads = 80ull * spec.genome_size /
                 static_cast<std::uint64_t>(spec.read_length);
  const auto ds = seq::SyntheticDataset::generate(spec, errors, 101);
  for (const unsigned threshold : {2u, 3u, 5u, 10u, 20u, 40u}) {
    auto params = bench::bench_params();
    params.kmer_threshold = threshold;
    params.tile_threshold = threshold;
    params.chunk_size = 1024;
    const auto result = core::run_sequential(ds.reads, params);
    const auto acc =
        stats::score_correction(ds.reads, result.corrected, ds.truth);
    thr.row()
        .cell(threshold)
        .cell(result.kmer_entries)
        .cell_fixed(acc.sensitivity(), 3)
        .cell_fixed(acc.gain(), 3)
        .cell(acc.false_positives);
  }
  thr.print(std::cout);
  std::printf(
      "\nreading: at low coverage every true tile is near the threshold and\n"
      "the spectrum starves (sensitivity collapses); at absurd thresholds\n"
      "the same happens from the other side. The plateau in the middle is\n"
      "why the benches run threshold 3 at E.Coli-like coverage, matching\n"
      "Reptile's recommended operating point.\n");
  return 0;
}
