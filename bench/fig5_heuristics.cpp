// Figure 5: time and memory footprint of each heuristic (E.Coli, 32 nodes).
//
// Paper findings to reproduce (1024 ranks on 32 nodes unless noted):
//   - universal: 8.8% faster, no extra memory;
//   - allgather k-mers (run at 256 ranks / 8 per node): SLOWER overall
//     because fewer, busier ranks; memory up to 928 MB/rank;
//   - allgather tiles (256 ranks): correction 975 s vs 1178 s base;
//     948 MB/rank — replicating tiles beats replicating k-mers;
//   - add remote lookups: no runtime gain, memory 119 -> 199 MB;
//   - batch reads table: lower memory, slightly higher construction time;
//   - full replication (1 rank/node, 64 threads): correction only 58 s,
//     1648 MB/rank.
//
// The modeled table mirrors those configurations. A functional section
// compares heuristics with measured counters at 8 ranks.

#include <cstdio>
#include <cstring>
#include <iostream>
#include <vector>

#include "bench/common.hpp"
#include "parallel/report.hpp"

int main(int argc, char** argv) {
  using namespace reptile;
  const auto args = bench::parse_bench_args(argc, argv);
  const auto& trace = args.trace;
  bench::print_header(
      "Figure 5 — heuristics: execution time and memory footprint (E.Coli)",
      "universal -8.8%; allgather tiles 975s vs 1178s; full replication 58s");

  const auto full = seq::DatasetSpec::ecoli();
  const auto traits = bench::bench_traits(full);
  const auto machine = perfmodel::MachineModel::bluegene_q();

  struct Row {
    const char* name;
    int ranks;
    int ranks_per_node;
    parallel::Heuristics heur;
    const char* slug = nullptr;  ///< key in BENCH_fig5.json (nullptr = omit)
  };
  auto h = [](auto setup) {
    parallel::Heuristics x;
    setup(x);
    return x;
  };
  const Row rows[] = {
      {"base", 1024, 32, h([](auto&) {})},
      {"universal", 1024, 32, h([](auto& x) { x.universal = true; })},
      {"read kmers/tiles", 1024, 32, h([](auto& x) { x.read_kmers = true; })},
      {"add remote lookups", 1024, 32,
       h([](auto& x) { x.read_kmers = x.add_remote = true; })},
      // The paper ran the replication modes with 8 ranks/node (256 ranks)
      // because of their memory footprint.
      {"allgather kmers (256r)", 256, 8,
       h([](auto& x) { x.allgather_kmers = true; })},
      {"allgather tiles (256r)", 256, 8,
       h([](auto& x) { x.allgather_tiles = true; })},
      {"batch reads table", 1024, 32, h([](auto& x) { x.batch_reads = true; })},
      // Full replication ran with 1 rank/node; our model keeps 2 threads
      // per rank, so we model 8 ranks/node as the closest no-SMT point.
      {"allgather both (256r)", 256, 8,
       h([](auto& x) { x.allgather_kmers = x.allgather_tiles = true; })},
      // Extensions beyond the paper's Fig. 5 matrix (Section V future work
      // and the Section III Bloom note):
      {"partial repl (node)", 1024, 32,
       h([](auto& x) { x.partial_replication_group = 32; })},
      {"partial repl (g=512)", 1024, 32,
       h([](auto& x) { x.partial_replication_group = 512; })},
      {"bloom construction", 1024, 32,
       h([](auto& x) { x.bloom_construction = true; })},
  };

  stats::TextTable table({"heuristic", "ranks", "construct s", "correct s",
                          "comm s", "MB/rank", "vs base"});
  double base_correct = 0;
  for (const Row& row : rows) {
    const auto run = perfmodel::model_run(machine, traits, full, row.ranks,
                                          row.ranks_per_node, row.heur);
    if (base_correct == 0) base_correct = run.correct_seconds();
    table.row()
        .cell(row.name)
        .cell(row.ranks)
        .cell_fixed(run.construct_seconds(), 1)
        .cell_fixed(run.correct_seconds(), 1)
        .cell_fixed(run.max_comm_seconds(), 1)
        .cell_fixed(run.max_memory_mb(), 1)
        .cell_fixed(run.correct_seconds() / base_correct, 2);
  }
  table.print(std::cout);

  // --- functional comparison at 8 ranks -------------------------------------
  std::printf("\nfunctional comparison (8 ranks, scaled replica, measured):\n");
  const auto ds = bench::scaled_replica(full, 3000, 5);
  parallel::DistConfig config;
  config.params = bench::bench_params();
  config.trace = trace;
  config.run_options.check.enabled = false;  // benchmark: no rtm-check hooks
  config.params.chunk_size = 256;
  config.ranks = 8;
  config.ranks_per_node = 4;

  stats::TextTable fn({"heuristic", "remote lookups", "probes", "served",
                       "prefetch hits", "filter neg", "peak MB (max rank)"});
  const Row fn_rows[] = {
      {"base", 8, 4, h([](auto&) {}), "base"},
      {"universal", 8, 4, h([](auto& x) { x.universal = true; }), "universal"},
      {"read kmers", 8, 4, h([](auto& x) { x.read_kmers = true; }),
       "read_kmers"},
      {"add remote", 8, 4,
       h([](auto& x) { x.read_kmers = x.add_remote = true; }), "add_remote"},
      {"allgather tiles", 8, 4, h([](auto& x) { x.allgather_tiles = true; }),
       "allgather_tiles"},
      {"allgather both", 8, 4,
       h([](auto& x) { x.allgather_kmers = x.allgather_tiles = true; }),
       "allgather_both"},
      {"batch reads", 8, 4, h([](auto& x) { x.batch_reads = true; }),
       "batch_reads"},
      // Extension: vectored per-chunk prefetch (see DESIGN.md).
      {"batched lookups", 8, 4, h([](auto& x) { x.batch_lookups = true; }),
       "batched_lookups"},
      {"batched + read kmers", 8, 4,
       h([](auto& x) { x.batch_lookups = x.read_kmers = true; }),
       "batched_read_kmers"},
      // Extension: filter exchange (DESIGN.md §9) — definite absences are
      // answered from the peer's Bloom filter without touching the wire.
      {"filtered lookups", 8, 4, h([](auto& x) { x.filter_lookups = true; }),
       "filtered"},
      {"filtered + batched", 8, 4,
       h([](auto& x) { x.filter_lookups = x.batch_lookups = true; }),
       "filtered_batched"},
  };
  struct JsonRow {
    const char* slug;
    std::uint64_t remote_lookups;
    std::uint64_t filter_neg_hits;
    std::uint64_t filter_false_positives;
    std::uint64_t substitutions;
    std::uint64_t reads_changed;
    std::uint64_t sent_msgs;
  };
  std::vector<JsonRow> json_rows;
  parallel::DistResult batched_result;
  for (const Row& row : fn_rows) {
    config.heuristics = row.heur;
    auto result = parallel::run_distributed(ds.reads, config);
    std::uint64_t remote = 0, probes = 0, served = 0, hits = 0;
    std::uint64_t neg_hits = 0, false_positives = 0;
    std::uint64_t reads_changed = 0, sent_msgs = 0;
    std::size_t peak = 0;
    for (const auto& r : result.ranks) {
      remote += r.remote.remote_kmer_lookups + r.remote.remote_tile_lookups;
      probes += r.service.probe_calls;
      served += r.service.requests_served;
      hits += r.remote.prefetch_hits;
      neg_hits += r.remote.filter_neg_hits;
      false_positives += r.remote.filter_false_positives;
      reads_changed += r.reads_changed;
      sent_msgs += r.traffic.sent_msgs();
      peak = std::max({peak, r.construction_peak_bytes,
                       r.footprint_after_correction.bytes});
    }
    fn.row()
        .cell(row.name)
        .cell(remote)
        .cell(probes)
        .cell(served)
        .cell(hits)
        .cell(neg_hits)
        .cell_fixed(static_cast<double>(peak) / (1 << 20), 2);
    if (row.slug != nullptr) {
      json_rows.push_back({row.slug, remote, neg_hits, false_positives,
                           result.total_substitutions(), reads_changed,
                           sent_msgs});
    }
    if (row.slug != nullptr && std::strcmp(row.slug, "batched_lookups") == 0) {
      batched_result = std::move(result);
    }
  }
  fn.print(std::cout);

  // Machine-readable summary for the CI bench gate: every counter here is
  // deterministic (seeded dataset, fixed topology, fault-free run), so the
  // gate does exact comparison against bench/baselines/BENCH_fig5.json.
  if (!args.json_path.empty()) {
    std::FILE* out = std::fopen(args.json_path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", args.json_path.c_str());
      return 1;
    }
    std::fprintf(out, "{\n  \"schema\": \"reptile-bench-fig5-v1\",\n"
                      "  \"rows\": {\n");
    for (std::size_t i = 0; i < json_rows.size(); ++i) {
      const JsonRow& r = json_rows[i];
      std::fprintf(
          out,
          "    \"%s\": {\"remote_lookups\": %llu, \"filter_neg_hits\": %llu, "
          "\"filter_false_positives\": %llu, \"substitutions\": %llu, "
          "\"reads_changed\": %llu, \"sent_msgs\": %llu}%s\n",
          r.slug, static_cast<unsigned long long>(r.remote_lookups),
          static_cast<unsigned long long>(r.filter_neg_hits),
          static_cast<unsigned long long>(r.filter_false_positives),
          static_cast<unsigned long long>(r.substitutions),
          static_cast<unsigned long long>(r.reads_changed),
          static_cast<unsigned long long>(r.sent_msgs),
          i + 1 < json_rows.size() ? "," : "");
    }
    std::fprintf(out, "  }\n}\n");
    std::fclose(out);
    std::printf("\nwrote %s\n", args.json_path.c_str());
  }

  // Machine-readable per-rank report of the batched-lookups run (batch and
  // prefetch counters included).
  std::printf("\n%s\n",
              parallel::to_report(batched_result, "fig5_batched_lookups")
                  .to_json()
                  .c_str());
  return 0;
}
