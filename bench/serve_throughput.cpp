// BENCH_serve.json: the resident correction server's recorded baseline.
//
//   $ serve_throughput [--json PATH] [--jobs N] [--ranks R]
//
// Boots one CorrectionServer, streams N identical jobs through it, and
// reports jobs/sec plus the per-job latency distribution. The checked-in
// counterpart lives in bench/baselines/BENCH_serve.json and is diffed by
// tools/bench_gate.py in CI:
//
//   hard           spectrum_builds_per_rank == 1 — the entire point of the
//                  serve refactor; a second build per rank means the
//                  rank/job lifetime split regressed.
//   exact          jobs, ranks, degraded_jobs, substitutions, reads_changed
//                  (seeded dataset, fault-free run: any drift is a
//                  functional regression, not noise).
//   warn           jobs_per_sec and the latency percentiles — wall-clock
//                  numbers are host-dependent and only flag large drift.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "parallel/dist_pipeline.hpp"
#include "parallel/serve.hpp"
#include "seq/dataset.hpp"
#include "stats/stopwatch.hpp"

namespace {

using namespace reptile;

std::vector<seq::Read> bench_dataset() {
  seq::DatasetSpec spec{"serve-bench", 3000, 80, 4000};
  seq::ErrorModelParams errors;
  errors.error_rate_start = 0.004;
  errors.error_rate_end = 0.012;
  return seq::SyntheticDataset::generate(spec, errors, 20240531).reads;
}

double percentile_ms(std::vector<double> seconds, double q) {
  if (seconds.empty()) return 0.0;
  std::sort(seconds.begin(), seconds.end());
  const auto index = static_cast<std::size_t>(
      q * static_cast<double>(seconds.size() - 1) + 0.5);
  return seconds[index] * 1e3;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  int jobs = 8;
  int ranks = 2;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      jobs = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--ranks") == 0 && i + 1 < argc) {
      ranks = std::atoi(argv[++i]);
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
      return 2;
    }
  }

  const std::vector<seq::Read> reads = bench_dataset();
  parallel::DistConfig config;
  config.ranks = ranks;
  config.heuristics.batch_lookups = true;
  config.run_options.check.enabled = false;  // measure serving, not auditing

  parallel::CorrectionServer server(reads, config,
                                    static_cast<std::size_t>(jobs));

  stats::Stopwatch wall;
  std::vector<std::future<parallel::JobReport>> futures;
  for (int j = 0; j < jobs; ++j) {
    parallel::JobRequest request;
    request.reads = reads;
    futures.push_back(server.submit(std::move(request)));
  }
  std::vector<double> latencies;
  std::uint64_t substitutions = 0;
  std::uint64_t reads_changed = 0;
  int degraded_jobs = 0;
  bool counters_stable = true;
  for (std::future<parallel::JobReport>& f : futures) {
    const parallel::JobReport report = f.get();
    latencies.push_back(report.seconds);
    if (report.degraded) ++degraded_jobs;
    if (substitutions == 0) {
      substitutions = report.total_substitutions();
      reads_changed = report.total_reads_changed();
    } else if (report.total_substitutions() != substitutions ||
               report.total_reads_changed() != reads_changed) {
      counters_stable = false;  // jobs are identical; outputs must be too
    }
  }
  const double total_seconds = wall.seconds();
  server.shutdown();
  const parallel::ServerStats stats = server.stats();

  const double jobs_per_sec =
      total_seconds > 0 ? static_cast<double>(jobs) / total_seconds : 0.0;
  const double p50 = percentile_ms(latencies, 0.50);
  const double p99 = percentile_ms(latencies, 0.99);
  const double max_ms = percentile_ms(latencies, 1.0);
  const std::uint64_t builds_per_rank =
      stats.spectrum_builds / static_cast<std::uint64_t>(ranks);

  std::printf("--- serve throughput (BENCH_serve.json) ---\n");
  std::printf("ranks %d, jobs %d over %zu reads\n", ranks, jobs, reads.size());
  std::printf("throughput    : %.2f jobs/sec (%.3fs total)\n", jobs_per_sec,
              total_seconds);
  std::printf("latency       : p50 %.1f ms, p99 %.1f ms, max %.1f ms\n", p50,
              p99, max_ms);
  std::printf("spectrum built: %llu per rank (must be 1)\n",
              static_cast<unsigned long long>(builds_per_rank));
  std::printf("per job       : %llu substitutions, %llu reads changed, "
              "%d degraded\n",
              static_cast<unsigned long long>(substitutions),
              static_cast<unsigned long long>(reads_changed), degraded_jobs);

  if (!counters_stable) {
    std::fprintf(stderr, "FAIL: identical jobs produced drifting counters\n");
    return 1;
  }
  if (builds_per_rank != 1 ||
      stats.spectrum_builds != static_cast<std::uint64_t>(ranks)) {
    std::fprintf(stderr, "FAIL: spectrum was not built exactly once per rank\n");
    return 1;
  }

  if (!json_path.empty()) {
    std::ofstream out(json_path, std::ios::trunc);
    out << "{\n"
        << "  \"schema\": \"reptile-bench-serve-v1\",\n"
        << "  \"serve\": {\n"
        << "    \"ranks\": " << ranks << ",\n"
        << "    \"jobs\": " << jobs << ",\n"
        << "    \"spectrum_builds_per_rank\": " << builds_per_rank << ",\n"
        << "    \"degraded_jobs\": " << degraded_jobs << ",\n"
        << "    \"substitutions\": " << substitutions << ",\n"
        << "    \"reads_changed\": " << reads_changed << ",\n"
        << "    \"jobs_per_sec\": " << jobs_per_sec << ",\n"
        << "    \"latency_p50_ms\": " << p50 << ",\n"
        << "    \"latency_p99_ms\": " << p99 << ",\n"
        << "    \"latency_max_ms\": " << max_ms << "\n"
        << "  }\n"
        << "}\n";
    if (!out.flush()) {
      std::fprintf(stderr, "FAIL: cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}
