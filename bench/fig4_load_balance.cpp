// Figure 4: effect of static load balancing, 128 ranks on 4 nodes (E.Coli).
//
// Paper findings to reproduce:
//   - without balancing, errors corrected per rank range 33886..47927
//     (~50% gap) and rank times range 4948 s .. >16000 s (>3x);
//   - communication time ranges 2891 .. 10800+ s; remote tile lookups
//     31M (fastest) .. 118M (slowest);
//   - with balancing, all ranks take ~8886 s uniformly, errors per rank
//     vary only ~2%, communication 5073..5268 s, ~64M tile lookups/rank;
//   - overall ~2x faster with balancing.
//
// The modeled table uses full E.Coli geometry; the functional section runs
// the real pipeline at 8 ranks on the scaled replica to show the same
// effect with measured (not modeled) counters.

#include <cstdio>
#include <iostream>

#include "bench/common.hpp"
#include "stats/summary.hpp"

int main(int argc, char** argv) {
  using namespace reptile;
  const auto trace = bench::parse_trace_args(argc, argv);
  bench::print_header(
      "Figure 4 — load balance on/off, 128 ranks on 4 nodes (E.Coli)",
      "balancing: ~2x total speedup; rank times 4948..16000+ -> ~8886 flat");

  const auto full = seq::DatasetSpec::ecoli();
  const auto traits = bench::bench_traits(full);
  const auto machine = perfmodel::MachineModel::bluegene_q();
  constexpr int kRanks = 128;
  constexpr int kRanksPerNode = 32;

  stats::TextTable table({"mode", "fastest rank s", "slowest rank s",
                          "comm min s", "comm max s", "errors/rank min",
                          "errors/rank max", "remote tiles/rank min (M)",
                          "max (M)"});
  for (const bool balance : {false, true}) {
    parallel::Heuristics heur;
    heur.load_balance = balance;
    const auto workload = perfmodel::synthesize_workload(
        traits, full, kRanks, kRanksPerNode, heur);
    const auto run = perfmodel::estimate_run(machine, workload, kRanksPerNode,
                                             heur, traits.params.chunk_size);
    double sub_min = 1e18, sub_max = 0, tiles_min = 1e18, tiles_max = 0;
    for (const auto& w : workload) {
      sub_min = std::min(sub_min, w.substitutions);
      sub_max = std::max(sub_max, w.substitutions);
      tiles_min = std::min(tiles_min, w.remote_tile_lookups);
      tiles_max = std::max(tiles_max, w.remote_tile_lookups);
    }
    table.row()
        .cell(balance ? "balanced" : "imbalanced")
        .cell_fixed(run.fastest_rank_seconds(), 0)
        .cell_fixed(run.slowest_rank_seconds(), 0)
        .cell_fixed(run.min_comm_seconds(), 0)
        .cell_fixed(run.max_comm_seconds(), 0)
        .cell_fixed(sub_min, 0)
        .cell_fixed(sub_max, 0)
        .cell_fixed(tiles_min / 1e6, 1)
        .cell_fixed(tiles_max / 1e6, 1);
  }
  table.print(std::cout);

  // --- functional cross-check at small scale --------------------------------
  std::printf("\nfunctional cross-check: real pipeline, 8 ranks, scaled "
              "replica (measured, not modeled):\n");
  const auto ds = bench::scaled_replica(full, 3000, 11);
  parallel::DistConfig config;
  config.params = bench::bench_params();
  config.trace = trace;
  config.run_options.check.enabled = false;  // benchmark: no rtm-check hooks
  config.params.chunk_size = 256;
  config.ranks = 8;
  config.ranks_per_node = 4;

  stats::TextTable fn({"mode", "untrusted tiles/rank min", "max",
                       "remote lookups/rank min", "max", "spread"});
  for (const bool balance : {false, true}) {
    config.heuristics.load_balance = balance;
    const auto result = parallel::run_distributed(ds.reads, config);
    std::vector<std::uint64_t> tiles, remote;
    for (const auto& r : result.ranks) {
      tiles.push_back(r.tiles_untrusted);
      remote.push_back(r.remote.remote_kmer_lookups +
                       r.remote.remote_tile_lookups);
    }
    const auto st = stats::summarize(std::span<const std::uint64_t>(tiles));
    const auto sr = stats::summarize(std::span<const std::uint64_t>(remote));
    fn.row()
        .cell(balance ? "balanced" : "imbalanced")
        .cell(static_cast<std::uint64_t>(st.min))
        .cell(static_cast<std::uint64_t>(st.max))
        .cell(static_cast<std::uint64_t>(sr.min))
        .cell(static_cast<std::uint64_t>(sr.max))
        .cell_fixed(st.relative_spread(), 2);
  }
  fn.print(std::cout);
  return 0;
}
