#pragma once
// Shared setup for the per-figure benchmark binaries.
//
// Every bench measures workload traits on a scaled synthetic replica of a
// Table I dataset (same read length, coverage, bursty error layout) and
// models the full dataset on the BlueGene/Q machine model. Functional
// sections run the real distributed pipeline at small rank counts over the
// in-process runtime.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/params.hpp"
#include "obs/trace.hpp"
#include "parallel/dist_pipeline.hpp"
#include "perfmodel/phase_model.hpp"
#include "seq/dataset.hpp"
#include "stats/table.hpp"

namespace reptile::bench {

/// Shared bench CLI. Every driver accepts:
///
///   --trace PREFIX   enable span tracing + the metrics registry for the
///                    functional (real-runtime) sections; each distributed
///                    run writes one Chrome-trace shard per rank to
///                    PREFIX.rankN.json (a later run in the same driver
///                    overwrites shards for the ranks it uses — the last
///                    functional section wins). Merge/validate the shards
///                    with tools/trace_merge. No effect on the modeled
///                    (perfmodel) sections, which spawn no runtime.
///
/// Unknown arguments exit with usage, so a typo never silently runs the
/// untraced configuration.
inline obs::TraceConfig parse_trace_args(int argc, char** argv) {
  obs::TraceConfig trace;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      trace.enabled = true;
      trace.metrics = true;
      trace.path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--trace PREFIX]\n", argv[0]);
      std::exit(2);
    }
  }
  return trace;
}

/// Extended bench CLI for drivers that also emit a machine-readable summary
/// (the CI bench gate consumes it):
///
///   --json PATH      write the driver's deterministic counters as JSON to
///                    PATH; tools/bench_gate.py compares it against the
///                    checked-in bench/baselines/ copy.
///
///   --ledger         arm the resource ledger (obs::ResourceLedger) for the
///                    functional sections: per-account byte attribution,
///                    RSS sampling, and the ledger fields of the scaling
///                    JSON. Off by default — the default bench run must be
///                    byte-identical to an uninstrumented one.
///
/// Same strictness as parse_trace_args: unknown arguments exit with usage.
struct BenchArgs {
  obs::TraceConfig trace;
  std::string json_path;  ///< empty = no JSON emission
};

inline BenchArgs parse_bench_args(int argc, char** argv) {
  BenchArgs args;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      args.trace.enabled = true;
      args.trace.metrics = true;
      args.trace.path = argv[++i];
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      args.json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--ledger") == 0) {
      args.trace.ledger = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--trace PREFIX] [--json PATH] [--ledger]\n",
                   argv[0]);
      std::exit(2);
    }
  }
  return args;
}

// --- scaling JSON (fig6/fig7/fig8 --json; BENCH_scaling.json) --------------
//
// One document per driver: functional rows measured on the real runtime
// (fig6; counters deterministic, timings host-dependent) and modeled rows
// from the BlueGene/Q performance model (all three figures; calibrated on
// host-measured traits, so every modeled number is warn-only in the gate).

/// One real-runtime rank-count row of the scaling trajectory.
struct ScalingFunctionalRow {
  int ranks = 0;
  // Exact (seeded dataset, fixed topology, deterministic table capacities):
  std::uint64_t max_remote_lookups = 0;  ///< worst rank, kmer + tile
  std::uint64_t substitutions = 0;
  std::uint64_t reads_changed = 0;
  std::uint64_t construction_peak_bytes = 0;  ///< worst rank
  // Warn-only (host wall times; ledger/RSS only populated with --ledger):
  double construct_seconds = 0;  ///< worst rank
  double correct_seconds = 0;    ///< worst rank
  std::uint64_t ledger_total_peak_bytes = 0;
  std::uint64_t rss_peak_bytes = 0;
};

/// One modeled rank-count row (perfmodel; warn-only throughout).
struct ScalingModeledRow {
  int ranks = 0;
  double construct_seconds = 0;
  double correct_seconds = 0;
  double total_seconds = 0;
  double mb_per_rank = 0;
  double efficiency = 0;
};

/// Writes the scaling JSON consumed by tools/bench_gate.py (`scaling`
/// handler). Returns false (after printing to stderr) when PATH is not
/// writable, so drivers can exit non-zero.
inline bool write_scaling_json(const std::string& path, const char* figure,
                               const std::vector<ScalingFunctionalRow>& fn,
                               const std::vector<ScalingModeledRow>& modeled) {
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  const auto u64 = [](std::uint64_t v) {
    return static_cast<unsigned long long>(v);
  };
  std::fprintf(out,
               "{\n  \"schema\": \"reptile-bench-scaling-v1\",\n"
               "  \"figure\": \"%s\",\n  \"functional\": {\n",
               figure);
  for (std::size_t i = 0; i < fn.size(); ++i) {
    const ScalingFunctionalRow& r = fn[i];
    std::fprintf(
        out,
        "    \"%d\": {\"max_remote_lookups\": %llu, \"substitutions\": %llu, "
        "\"reads_changed\": %llu, \"construction_peak_bytes\": %llu, "
        "\"construct_seconds\": %.6f, \"correct_seconds\": %.6f, "
        "\"ledger_total_peak_bytes\": %llu, \"rss_peak_bytes\": %llu}%s\n",
        r.ranks, u64(r.max_remote_lookups), u64(r.substitutions),
        u64(r.reads_changed), u64(r.construction_peak_bytes),
        r.construct_seconds, r.correct_seconds, u64(r.ledger_total_peak_bytes),
        u64(r.rss_peak_bytes), i + 1 < fn.size() ? "," : "");
  }
  std::fprintf(out, "  },\n  \"modeled\": {\n");
  for (std::size_t i = 0; i < modeled.size(); ++i) {
    const ScalingModeledRow& r = modeled[i];
    std::fprintf(out,
                 "    \"%d\": {\"construct_seconds\": %.3f, "
                 "\"correct_seconds\": %.3f, \"total_seconds\": %.3f, "
                 "\"mb_per_rank\": %.3f, \"efficiency\": %.4f}%s\n",
                 r.ranks, r.construct_seconds, r.correct_seconds,
                 r.total_seconds, r.mb_per_rank, r.efficiency,
                 i + 1 < modeled.size() ? "," : "");
  }
  std::fprintf(out, "  }\n}\n");
  std::fclose(out);
  std::printf("\nwrote %s\n", path.c_str());
  return true;
}

/// Corrector parameters used across the reproduction benches. k=12 tiles of
/// 20 bp, threshold 3, and a wide per-tile search (the paper's workload is
/// dominated by candidate-tile lookups).
inline core::CorrectorParams bench_params() {
  core::CorrectorParams p;
  p.k = 12;
  p.tile_overlap = 4;
  p.kmer_threshold = 3;
  p.tile_threshold = 3;
  p.max_positions_per_tile = 6;
  p.chunk_size = 2000;
  return p;
}

/// Error model with bursts localized in file regions — the cause of the
/// paper's load imbalance (Section III-A).
inline seq::ErrorModelParams bench_errors() {
  seq::ErrorModelParams e;
  e.error_rate_start = 0.003;
  e.error_rate_end = 0.01;
  e.burst_fraction = 0.2;
  e.burst_regions = 4;
  e.burst_multiplier = 8.0;
  return e;
}

/// Per-dataset error profiles. The three SRA datasets have very different
/// per-read correction workloads (the paper corrects 10.8x more Drosophila
/// reads in only 3x the E.Coli time, so its per-read cost is ~3.5x lower;
/// its imbalance is also harsher — the imbalanced runs never finished).
/// These profiles reproduce those relative workloads.
inline seq::ErrorModelParams bench_errors_for(const std::string& dataset) {
  seq::ErrorModelParams e = bench_errors();
  if (dataset == "Drosophila") {
    e.error_rate_start = 0.001;   // cleaner reads: less work per read ...
    e.error_rate_end = 0.0035;
    e.burst_fraction = 0.08;      // ... but errors concentrated harder
    e.burst_regions = 2;
    e.burst_multiplier = 16.0;
  } else if (dataset == "Human") {
    e.error_rate_start = 0.0015;
    e.error_rate_end = 0.006;
    e.burst_fraction = 0.15;
    e.burst_regions = 4;
    e.burst_multiplier = 8.0;
  }
  return e;
}

/// Scaled replica of `full` with about `target_reads` reads, corrupted with
/// the dataset's error profile.
inline seq::SyntheticDataset scaled_replica(const seq::DatasetSpec& full,
                                            std::uint64_t target_reads,
                                            std::uint64_t seed) {
  const auto spec = full.scaled(static_cast<double>(target_reads) /
                                static_cast<double>(full.n_reads));
  return seq::SyntheticDataset::generate(spec, bench_errors_for(full.name),
                                         seed);
}

/// Measures traits for a Table I dataset on a scaled replica.
inline perfmodel::DatasetTraits bench_traits(const seq::DatasetSpec& full,
                                             std::uint64_t target_reads = 4000,
                                             std::uint64_t seed = 20160523) {
  const auto replica = scaled_replica(full, target_reads, seed);
  return perfmodel::measure_traits(replica, bench_params(),
                                   bench_errors_for(full.name),
                                   /*np_ref=*/64);
}

inline void print_header(const char* figure, const char* paper_summary) {
  std::printf("==================================================================\n");
  std::printf("%s\n", figure);
  std::printf("paper: %s\n", paper_summary);
  std::printf("==================================================================\n");
}

}  // namespace reptile::bench
