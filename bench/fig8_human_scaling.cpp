// Figure 8: Human dataset (1.55 B reads), 128 to 1024 nodes.
//
// Paper findings to reproduce:
//   - all runs use batch-reads + load balancing (the Step III exchange
//     buffers would otherwise exceed per-process memory);
//   - batch size 5000 reads for the 128/256-node runs, 10000 for 512/1024;
//   - error correction completes in a little more than two hours
//     (~2.2-2.5 h) on 1024 nodes (32768 ranks);
//   - every run stays under 512 MB per process;
//   - Section V: footprint ~120 MB/rank at 1024 nodes (E.Coli <50 MB at
//     256 nodes, Drosophila ~80 MB at 512 nodes).

#include <cstdio>
#include <iostream>

#include "bench/common.hpp"

int main(int argc, char** argv) {
  using namespace reptile;
  const auto args = bench::parse_bench_args(argc, argv);
  if (args.trace.enabled) {
    std::printf("note: --trace accepted for CLI uniformity, but this driver "
                "only runs the performance model (no runtime to trace)\n");
  }
  bench::print_header(
      "Figure 8 — Human dataset scaling, 128-1024 nodes (32 ranks/node)",
      "~2.2 h on 1024 nodes; <512 MB per process throughout; batch reads");

  const auto full = seq::DatasetSpec::human();
  const auto traits = bench::bench_traits(full);
  const auto machine = perfmodel::MachineModel::bluegene_q();
  constexpr int kRanksPerNode = 32;

  stats::TextTable table({"nodes", "ranks", "batch", "construct s",
                          "correct s", "total s", "total h", "MB/rank",
                          "<512MB"});
  std::vector<bench::ScalingModeledRow> modeled_rows;
  perfmodel::RunEstimate baseline;
  for (int nodes : {128, 256, 512, 1024}) {
    const int np = nodes * kRanksPerNode;
    parallel::Heuristics heur;
    heur.batch_reads = true;
    auto t = traits;
    t.params.chunk_size = nodes <= 256 ? 5000 : 10000;  // paper's settings
    const auto run =
        perfmodel::model_run(machine, t, full, np, kRanksPerNode, heur);
    if (baseline.ranks.empty()) baseline = run;
    table.row()
        .cell(nodes)
        .cell(np)
        .cell(t.params.chunk_size)
        .cell_fixed(run.construct_seconds(), 0)
        .cell_fixed(run.correct_seconds(), 0)
        .cell_fixed(run.total_seconds(), 0)
        .cell_fixed(run.total_seconds() / 3600.0, 2)
        .cell_fixed(run.max_memory_mb(), 1)
        .cell(run.max_memory_mb() < 512.0 ? "yes" : "NO");
    modeled_rows.push_back(
        {np, run.construct_seconds(), run.correct_seconds(),
         run.total_seconds(), run.max_memory_mb(),
         perfmodel::RunEstimate::parallel_efficiency(baseline, run)});
  }
  table.print(std::cout);

  // --- Section V footprint summary across all three datasets ---------------
  std::printf("\nSection V footprints (largest node counts, modeled):\n");
  stats::TextTable fp({"dataset", "nodes", "ranks", "MB/rank",
                       "paper MB/rank"});
  struct Case {
    seq::DatasetSpec spec;
    int nodes;
    const char* paper;
    bool batch;
  };
  const Case cases[] = {
      {seq::DatasetSpec::ecoli(), 256, "< 50", false},
      {seq::DatasetSpec::drosophila(), 512, "~ 80", false},
      {seq::DatasetSpec::human(), 1024, "~ 120", true},
  };
  for (const Case& c : cases) {
    const auto t = bench::bench_traits(c.spec);
    parallel::Heuristics heur;
    heur.batch_reads = c.batch;
    const int np = c.nodes * kRanksPerNode;
    const auto run =
        perfmodel::model_run(machine, t, c.spec, np, kRanksPerNode, heur);
    fp.row()
        .cell(c.spec.name)
        .cell(c.nodes)
        .cell(np)
        .cell_fixed(run.max_memory_mb(), 1)
        .cell(c.paper);
  }
  fp.print(std::cout);
  std::printf(
      "\nnote: modeled footprints count the spectrum hash tables only; the\n"
      "paper's figures include messaging buffers and the MPI runtime, which\n"
      "adds a few tens of MB per process on BlueGene/Q.\n");

  // Modeled-only driver: functional section empty, every modeled number
  // warn-only in the bench gate.
  if (!args.json_path.empty() &&
      !bench::write_scaling_json(args.json_path, "fig8", {}, modeled_rows)) {
    return 1;
  }
  return 0;
}
