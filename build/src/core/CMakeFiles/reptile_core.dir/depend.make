# Empty dependencies file for reptile_core.
# This may be replaced when dependencies are built.
