# Empty compiler generated dependencies file for reptile_core.
# This may be replaced when dependencies are built.
