file(REMOVE_RECURSE
  "libreptile_core.a"
)
