file(REMOVE_RECURSE
  "CMakeFiles/reptile_core.dir/corrector.cpp.o"
  "CMakeFiles/reptile_core.dir/corrector.cpp.o.d"
  "CMakeFiles/reptile_core.dir/frozen_spectrum.cpp.o"
  "CMakeFiles/reptile_core.dir/frozen_spectrum.cpp.o.d"
  "CMakeFiles/reptile_core.dir/pipeline.cpp.o"
  "CMakeFiles/reptile_core.dir/pipeline.cpp.o.d"
  "CMakeFiles/reptile_core.dir/spectrum.cpp.o"
  "CMakeFiles/reptile_core.dir/spectrum.cpp.o.d"
  "CMakeFiles/reptile_core.dir/spectrum_io.cpp.o"
  "CMakeFiles/reptile_core.dir/spectrum_io.cpp.o.d"
  "libreptile_core.a"
  "libreptile_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reptile_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
