
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/corrector.cpp" "src/core/CMakeFiles/reptile_core.dir/corrector.cpp.o" "gcc" "src/core/CMakeFiles/reptile_core.dir/corrector.cpp.o.d"
  "/root/repo/src/core/frozen_spectrum.cpp" "src/core/CMakeFiles/reptile_core.dir/frozen_spectrum.cpp.o" "gcc" "src/core/CMakeFiles/reptile_core.dir/frozen_spectrum.cpp.o.d"
  "/root/repo/src/core/pipeline.cpp" "src/core/CMakeFiles/reptile_core.dir/pipeline.cpp.o" "gcc" "src/core/CMakeFiles/reptile_core.dir/pipeline.cpp.o.d"
  "/root/repo/src/core/spectrum.cpp" "src/core/CMakeFiles/reptile_core.dir/spectrum.cpp.o" "gcc" "src/core/CMakeFiles/reptile_core.dir/spectrum.cpp.o.d"
  "/root/repo/src/core/spectrum_io.cpp" "src/core/CMakeFiles/reptile_core.dir/spectrum_io.cpp.o" "gcc" "src/core/CMakeFiles/reptile_core.dir/spectrum_io.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/seq/CMakeFiles/reptile_seq.dir/DependInfo.cmake"
  "/root/repo/build/src/hash/CMakeFiles/reptile_hash.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
