# Empty dependencies file for reptile_rtm.
# This may be replaced when dependencies are built.
