file(REMOVE_RECURSE
  "CMakeFiles/reptile_rtm.dir/chaos.cpp.o"
  "CMakeFiles/reptile_rtm.dir/chaos.cpp.o.d"
  "CMakeFiles/reptile_rtm.dir/comm.cpp.o"
  "CMakeFiles/reptile_rtm.dir/comm.cpp.o.d"
  "libreptile_rtm.a"
  "libreptile_rtm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reptile_rtm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
