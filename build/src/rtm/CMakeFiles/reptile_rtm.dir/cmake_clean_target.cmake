file(REMOVE_RECURSE
  "libreptile_rtm.a"
)
