file(REMOVE_RECURSE
  "CMakeFiles/reptile_perfmodel.dir/machine.cpp.o"
  "CMakeFiles/reptile_perfmodel.dir/machine.cpp.o.d"
  "CMakeFiles/reptile_perfmodel.dir/phase_model.cpp.o"
  "CMakeFiles/reptile_perfmodel.dir/phase_model.cpp.o.d"
  "CMakeFiles/reptile_perfmodel.dir/workload.cpp.o"
  "CMakeFiles/reptile_perfmodel.dir/workload.cpp.o.d"
  "libreptile_perfmodel.a"
  "libreptile_perfmodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reptile_perfmodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
