# Empty compiler generated dependencies file for reptile_perfmodel.
# This may be replaced when dependencies are built.
