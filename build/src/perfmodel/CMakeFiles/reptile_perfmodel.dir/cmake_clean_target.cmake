file(REMOVE_RECURSE
  "libreptile_perfmodel.a"
)
