file(REMOVE_RECURSE
  "libreptile_hash.a"
)
