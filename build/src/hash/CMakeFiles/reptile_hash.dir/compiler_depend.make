# Empty compiler generated dependencies file for reptile_hash.
# This may be replaced when dependencies are built.
