file(REMOVE_RECURSE
  "CMakeFiles/reptile_hash.dir/sorted_spectrum.cpp.o"
  "CMakeFiles/reptile_hash.dir/sorted_spectrum.cpp.o.d"
  "libreptile_hash.a"
  "libreptile_hash.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reptile_hash.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
