file(REMOVE_RECURSE
  "CMakeFiles/reptile_seq.dir/alphabet.cpp.o"
  "CMakeFiles/reptile_seq.dir/alphabet.cpp.o.d"
  "CMakeFiles/reptile_seq.dir/dataset.cpp.o"
  "CMakeFiles/reptile_seq.dir/dataset.cpp.o.d"
  "CMakeFiles/reptile_seq.dir/error_model.cpp.o"
  "CMakeFiles/reptile_seq.dir/error_model.cpp.o.d"
  "CMakeFiles/reptile_seq.dir/fasta_io.cpp.o"
  "CMakeFiles/reptile_seq.dir/fasta_io.cpp.o.d"
  "CMakeFiles/reptile_seq.dir/fastq_io.cpp.o"
  "CMakeFiles/reptile_seq.dir/fastq_io.cpp.o.d"
  "CMakeFiles/reptile_seq.dir/kmer.cpp.o"
  "CMakeFiles/reptile_seq.dir/kmer.cpp.o.d"
  "CMakeFiles/reptile_seq.dir/tile.cpp.o"
  "CMakeFiles/reptile_seq.dir/tile.cpp.o.d"
  "libreptile_seq.a"
  "libreptile_seq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reptile_seq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
