# Empty dependencies file for reptile_seq.
# This may be replaced when dependencies are built.
