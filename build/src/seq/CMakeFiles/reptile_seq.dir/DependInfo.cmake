
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/seq/alphabet.cpp" "src/seq/CMakeFiles/reptile_seq.dir/alphabet.cpp.o" "gcc" "src/seq/CMakeFiles/reptile_seq.dir/alphabet.cpp.o.d"
  "/root/repo/src/seq/dataset.cpp" "src/seq/CMakeFiles/reptile_seq.dir/dataset.cpp.o" "gcc" "src/seq/CMakeFiles/reptile_seq.dir/dataset.cpp.o.d"
  "/root/repo/src/seq/error_model.cpp" "src/seq/CMakeFiles/reptile_seq.dir/error_model.cpp.o" "gcc" "src/seq/CMakeFiles/reptile_seq.dir/error_model.cpp.o.d"
  "/root/repo/src/seq/fasta_io.cpp" "src/seq/CMakeFiles/reptile_seq.dir/fasta_io.cpp.o" "gcc" "src/seq/CMakeFiles/reptile_seq.dir/fasta_io.cpp.o.d"
  "/root/repo/src/seq/fastq_io.cpp" "src/seq/CMakeFiles/reptile_seq.dir/fastq_io.cpp.o" "gcc" "src/seq/CMakeFiles/reptile_seq.dir/fastq_io.cpp.o.d"
  "/root/repo/src/seq/kmer.cpp" "src/seq/CMakeFiles/reptile_seq.dir/kmer.cpp.o" "gcc" "src/seq/CMakeFiles/reptile_seq.dir/kmer.cpp.o.d"
  "/root/repo/src/seq/tile.cpp" "src/seq/CMakeFiles/reptile_seq.dir/tile.cpp.o" "gcc" "src/seq/CMakeFiles/reptile_seq.dir/tile.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
