file(REMOVE_RECURSE
  "libreptile_seq.a"
)
