# Empty dependencies file for reptile_parallel.
# This may be replaced when dependencies are built.
