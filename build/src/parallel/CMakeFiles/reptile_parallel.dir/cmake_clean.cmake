file(REMOVE_RECURSE
  "CMakeFiles/reptile_parallel.dir/baseline_replicated.cpp.o"
  "CMakeFiles/reptile_parallel.dir/baseline_replicated.cpp.o.d"
  "CMakeFiles/reptile_parallel.dir/config_file.cpp.o"
  "CMakeFiles/reptile_parallel.dir/config_file.cpp.o.d"
  "CMakeFiles/reptile_parallel.dir/dist_pipeline.cpp.o"
  "CMakeFiles/reptile_parallel.dir/dist_pipeline.cpp.o.d"
  "CMakeFiles/reptile_parallel.dir/dist_spectrum.cpp.o"
  "CMakeFiles/reptile_parallel.dir/dist_spectrum.cpp.o.d"
  "CMakeFiles/reptile_parallel.dir/lookup_service.cpp.o"
  "CMakeFiles/reptile_parallel.dir/lookup_service.cpp.o.d"
  "CMakeFiles/reptile_parallel.dir/rebalance.cpp.o"
  "CMakeFiles/reptile_parallel.dir/rebalance.cpp.o.d"
  "CMakeFiles/reptile_parallel.dir/remote_spectrum.cpp.o"
  "CMakeFiles/reptile_parallel.dir/remote_spectrum.cpp.o.d"
  "libreptile_parallel.a"
  "libreptile_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reptile_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
