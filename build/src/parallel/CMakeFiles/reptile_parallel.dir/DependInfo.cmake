
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/parallel/baseline_replicated.cpp" "src/parallel/CMakeFiles/reptile_parallel.dir/baseline_replicated.cpp.o" "gcc" "src/parallel/CMakeFiles/reptile_parallel.dir/baseline_replicated.cpp.o.d"
  "/root/repo/src/parallel/config_file.cpp" "src/parallel/CMakeFiles/reptile_parallel.dir/config_file.cpp.o" "gcc" "src/parallel/CMakeFiles/reptile_parallel.dir/config_file.cpp.o.d"
  "/root/repo/src/parallel/dist_pipeline.cpp" "src/parallel/CMakeFiles/reptile_parallel.dir/dist_pipeline.cpp.o" "gcc" "src/parallel/CMakeFiles/reptile_parallel.dir/dist_pipeline.cpp.o.d"
  "/root/repo/src/parallel/dist_spectrum.cpp" "src/parallel/CMakeFiles/reptile_parallel.dir/dist_spectrum.cpp.o" "gcc" "src/parallel/CMakeFiles/reptile_parallel.dir/dist_spectrum.cpp.o.d"
  "/root/repo/src/parallel/lookup_service.cpp" "src/parallel/CMakeFiles/reptile_parallel.dir/lookup_service.cpp.o" "gcc" "src/parallel/CMakeFiles/reptile_parallel.dir/lookup_service.cpp.o.d"
  "/root/repo/src/parallel/rebalance.cpp" "src/parallel/CMakeFiles/reptile_parallel.dir/rebalance.cpp.o" "gcc" "src/parallel/CMakeFiles/reptile_parallel.dir/rebalance.cpp.o.d"
  "/root/repo/src/parallel/remote_spectrum.cpp" "src/parallel/CMakeFiles/reptile_parallel.dir/remote_spectrum.cpp.o" "gcc" "src/parallel/CMakeFiles/reptile_parallel.dir/remote_spectrum.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/reptile_core.dir/DependInfo.cmake"
  "/root/repo/build/src/rtm/CMakeFiles/reptile_rtm.dir/DependInfo.cmake"
  "/root/repo/build/src/hash/CMakeFiles/reptile_hash.dir/DependInfo.cmake"
  "/root/repo/build/src/seq/CMakeFiles/reptile_seq.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
