file(REMOVE_RECURSE
  "libreptile_parallel.a"
)
