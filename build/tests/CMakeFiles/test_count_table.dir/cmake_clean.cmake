file(REMOVE_RECURSE
  "CMakeFiles/test_count_table.dir/test_count_table.cpp.o"
  "CMakeFiles/test_count_table.dir/test_count_table.cpp.o.d"
  "test_count_table"
  "test_count_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_count_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
