# Empty dependencies file for test_dist_spectrum.
# This may be replaced when dependencies are built.
