file(REMOVE_RECURSE
  "CMakeFiles/test_dist_spectrum.dir/test_dist_spectrum.cpp.o"
  "CMakeFiles/test_dist_spectrum.dir/test_dist_spectrum.cpp.o.d"
  "test_dist_spectrum"
  "test_dist_spectrum.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dist_spectrum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
