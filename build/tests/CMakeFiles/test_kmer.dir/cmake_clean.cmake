file(REMOVE_RECURSE
  "CMakeFiles/test_kmer.dir/test_kmer.cpp.o"
  "CMakeFiles/test_kmer.dir/test_kmer.cpp.o.d"
  "test_kmer"
  "test_kmer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kmer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
