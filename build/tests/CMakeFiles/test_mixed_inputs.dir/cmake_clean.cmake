file(REMOVE_RECURSE
  "CMakeFiles/test_mixed_inputs.dir/test_mixed_inputs.cpp.o"
  "CMakeFiles/test_mixed_inputs.dir/test_mixed_inputs.cpp.o.d"
  "test_mixed_inputs"
  "test_mixed_inputs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mixed_inputs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
