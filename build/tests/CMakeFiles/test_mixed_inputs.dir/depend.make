# Empty dependencies file for test_mixed_inputs.
# This may be replaced when dependencies are built.
