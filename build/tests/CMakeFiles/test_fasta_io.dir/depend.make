# Empty dependencies file for test_fasta_io.
# This may be replaced when dependencies are built.
