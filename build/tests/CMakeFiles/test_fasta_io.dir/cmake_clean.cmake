file(REMOVE_RECURSE
  "CMakeFiles/test_fasta_io.dir/test_fasta_io.cpp.o"
  "CMakeFiles/test_fasta_io.dir/test_fasta_io.cpp.o.d"
  "test_fasta_io"
  "test_fasta_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fasta_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
