file(REMOVE_RECURSE
  "CMakeFiles/test_lookup_service.dir/test_lookup_service.cpp.o"
  "CMakeFiles/test_lookup_service.dir/test_lookup_service.cpp.o.d"
  "test_lookup_service"
  "test_lookup_service.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lookup_service.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
