# Empty compiler generated dependencies file for test_lookup_service.
# This may be replaced when dependencies are built.
