file(REMOVE_RECURSE
  "CMakeFiles/test_rtm_stress.dir/test_rtm_stress.cpp.o"
  "CMakeFiles/test_rtm_stress.dir/test_rtm_stress.cpp.o.d"
  "test_rtm_stress"
  "test_rtm_stress.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rtm_stress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
