# Empty compiler generated dependencies file for test_rtm_stress.
# This may be replaced when dependencies are built.
