file(REMOVE_RECURSE
  "CMakeFiles/test_corrector_edge.dir/test_corrector_edge.cpp.o"
  "CMakeFiles/test_corrector_edge.dir/test_corrector_edge.cpp.o.d"
  "test_corrector_edge"
  "test_corrector_edge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_corrector_edge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
