# Empty compiler generated dependencies file for test_corrector_edge.
# This may be replaced when dependencies are built.
