# Empty dependencies file for test_remote_spectrum.
# This may be replaced when dependencies are built.
