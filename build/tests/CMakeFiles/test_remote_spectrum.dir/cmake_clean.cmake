file(REMOVE_RECURSE
  "CMakeFiles/test_remote_spectrum.dir/test_remote_spectrum.cpp.o"
  "CMakeFiles/test_remote_spectrum.dir/test_remote_spectrum.cpp.o.d"
  "test_remote_spectrum"
  "test_remote_spectrum.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_remote_spectrum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
