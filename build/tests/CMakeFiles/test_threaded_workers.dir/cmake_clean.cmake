file(REMOVE_RECURSE
  "CMakeFiles/test_threaded_workers.dir/test_threaded_workers.cpp.o"
  "CMakeFiles/test_threaded_workers.dir/test_threaded_workers.cpp.o.d"
  "test_threaded_workers"
  "test_threaded_workers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_threaded_workers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
