
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_batch_lookup.cpp" "tests/CMakeFiles/test_batch_lookup.dir/test_batch_lookup.cpp.o" "gcc" "tests/CMakeFiles/test_batch_lookup.dir/test_batch_lookup.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/parallel/CMakeFiles/reptile_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/reptile_core.dir/DependInfo.cmake"
  "/root/repo/build/src/seq/CMakeFiles/reptile_seq.dir/DependInfo.cmake"
  "/root/repo/build/src/hash/CMakeFiles/reptile_hash.dir/DependInfo.cmake"
  "/root/repo/build/src/rtm/CMakeFiles/reptile_rtm.dir/DependInfo.cmake"
  "/root/repo/build/src/perfmodel/CMakeFiles/reptile_perfmodel.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
