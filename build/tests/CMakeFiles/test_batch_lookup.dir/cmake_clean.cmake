file(REMOVE_RECURSE
  "CMakeFiles/test_batch_lookup.dir/test_batch_lookup.cpp.o"
  "CMakeFiles/test_batch_lookup.dir/test_batch_lookup.cpp.o.d"
  "test_batch_lookup"
  "test_batch_lookup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_batch_lookup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
