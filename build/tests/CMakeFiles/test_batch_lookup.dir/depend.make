# Empty dependencies file for test_batch_lookup.
# This may be replaced when dependencies are built.
