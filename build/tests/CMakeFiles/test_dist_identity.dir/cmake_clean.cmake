file(REMOVE_RECURSE
  "CMakeFiles/test_dist_identity.dir/test_dist_identity.cpp.o"
  "CMakeFiles/test_dist_identity.dir/test_dist_identity.cpp.o.d"
  "test_dist_identity"
  "test_dist_identity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dist_identity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
