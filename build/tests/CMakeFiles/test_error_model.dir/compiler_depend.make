# Empty compiler generated dependencies file for test_error_model.
# This may be replaced when dependencies are built.
