file(REMOVE_RECURSE
  "CMakeFiles/test_spectrum_io.dir/test_spectrum_io.cpp.o"
  "CMakeFiles/test_spectrum_io.dir/test_spectrum_io.cpp.o.d"
  "test_spectrum_io"
  "test_spectrum_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_spectrum_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
