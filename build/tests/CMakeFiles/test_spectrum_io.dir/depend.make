# Empty dependencies file for test_spectrum_io.
# This may be replaced when dependencies are built.
