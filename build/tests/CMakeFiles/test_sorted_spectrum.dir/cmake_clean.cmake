file(REMOVE_RECURSE
  "CMakeFiles/test_sorted_spectrum.dir/test_sorted_spectrum.cpp.o"
  "CMakeFiles/test_sorted_spectrum.dir/test_sorted_spectrum.cpp.o.d"
  "test_sorted_spectrum"
  "test_sorted_spectrum.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sorted_spectrum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
