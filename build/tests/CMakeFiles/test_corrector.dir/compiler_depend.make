# Empty compiler generated dependencies file for test_corrector.
# This may be replaced when dependencies are built.
