file(REMOVE_RECURSE
  "CMakeFiles/test_sequential_pipeline.dir/test_sequential_pipeline.cpp.o"
  "CMakeFiles/test_sequential_pipeline.dir/test_sequential_pipeline.cpp.o.d"
  "test_sequential_pipeline"
  "test_sequential_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sequential_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
