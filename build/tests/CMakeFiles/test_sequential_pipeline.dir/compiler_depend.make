# Empty compiler generated dependencies file for test_sequential_pipeline.
# This may be replaced when dependencies are built.
