# Empty dependencies file for test_dist_files.
# This may be replaced when dependencies are built.
