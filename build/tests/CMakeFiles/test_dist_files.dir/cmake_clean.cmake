file(REMOVE_RECURSE
  "CMakeFiles/test_dist_files.dir/test_dist_files.cpp.o"
  "CMakeFiles/test_dist_files.dir/test_dist_files.cpp.o.d"
  "test_dist_files"
  "test_dist_files.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dist_files.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
