# Empty dependencies file for test_fastq_io.
# This may be replaced when dependencies are built.
