file(REMOVE_RECURSE
  "CMakeFiles/test_fastq_io.dir/test_fastq_io.cpp.o"
  "CMakeFiles/test_fastq_io.dir/test_fastq_io.cpp.o.d"
  "test_fastq_io"
  "test_fastq_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fastq_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
