# Empty compiler generated dependencies file for test_read_sources.
# This may be replaced when dependencies are built.
