file(REMOVE_RECURSE
  "CMakeFiles/test_read_sources.dir/test_read_sources.cpp.o"
  "CMakeFiles/test_read_sources.dir/test_read_sources.cpp.o.d"
  "test_read_sources"
  "test_read_sources.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_read_sources.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
