# Empty dependencies file for fig4_load_balance.
# This may be replaced when dependencies are built.
