file(REMOVE_RECURSE
  "CMakeFiles/fig4_load_balance.dir/fig4_load_balance.cpp.o"
  "CMakeFiles/fig4_load_balance.dir/fig4_load_balance.cpp.o.d"
  "fig4_load_balance"
  "fig4_load_balance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_load_balance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
