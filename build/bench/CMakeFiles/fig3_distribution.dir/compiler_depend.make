# Empty compiler generated dependencies file for fig3_distribution.
# This may be replaced when dependencies are built.
