file(REMOVE_RECURSE
  "CMakeFiles/ablation_prior_art.dir/ablation_prior_art.cpp.o"
  "CMakeFiles/ablation_prior_art.dir/ablation_prior_art.cpp.o.d"
  "ablation_prior_art"
  "ablation_prior_art.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_prior_art.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
