# Empty compiler generated dependencies file for ablation_prior_art.
# This may be replaced when dependencies are built.
