file(REMOVE_RECURSE
  "CMakeFiles/fig5_heuristics.dir/fig5_heuristics.cpp.o"
  "CMakeFiles/fig5_heuristics.dir/fig5_heuristics.cpp.o.d"
  "fig5_heuristics"
  "fig5_heuristics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_heuristics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
