# Empty compiler generated dependencies file for fig5_heuristics.
# This may be replaced when dependencies are built.
