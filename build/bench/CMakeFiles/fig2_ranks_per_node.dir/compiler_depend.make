# Empty compiler generated dependencies file for fig2_ranks_per_node.
# This may be replaced when dependencies are built.
