file(REMOVE_RECURSE
  "CMakeFiles/fig2_ranks_per_node.dir/fig2_ranks_per_node.cpp.o"
  "CMakeFiles/fig2_ranks_per_node.dir/fig2_ranks_per_node.cpp.o.d"
  "fig2_ranks_per_node"
  "fig2_ranks_per_node.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_ranks_per_node.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
