file(REMOVE_RECURSE
  "CMakeFiles/ablation_partial_replication.dir/ablation_partial_replication.cpp.o"
  "CMakeFiles/ablation_partial_replication.dir/ablation_partial_replication.cpp.o.d"
  "ablation_partial_replication"
  "ablation_partial_replication.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_partial_replication.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
