# Empty dependencies file for ablation_partial_replication.
# This may be replaced when dependencies are built.
