# Empty dependencies file for fig7_drosophila_scaling.
# This may be replaced when dependencies are built.
