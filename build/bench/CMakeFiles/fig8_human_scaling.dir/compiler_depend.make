# Empty compiler generated dependencies file for fig8_human_scaling.
# This may be replaced when dependencies are built.
