# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_fastq_convert "/root/repo/build/examples/fastq_convert")
set_tests_properties(example_fastq_convert PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_reptile_correct "/root/repo/build/examples/reptile_correct")
set_tests_properties(example_reptile_correct PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_heuristics_tour "/root/repo/build/examples/heuristics_tour" "1200" "4")
set_tests_properties(example_heuristics_tour PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_cluster_scaling "/root/repo/build/examples/cluster_scaling" "ecoli")
set_tests_properties(example_cluster_scaling PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_ecoli_pipeline "/root/repo/build/examples/ecoli_pipeline" "0.0002" "4")
set_tests_properties(example_ecoli_pipeline PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_spectrum_reuse "/root/repo/build/examples/spectrum_reuse")
set_tests_properties(example_spectrum_reuse PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;26;add_test;/root/repo/examples/CMakeLists.txt;0;")
