file(REMOVE_RECURSE
  "CMakeFiles/heuristics_tour.dir/heuristics_tour.cpp.o"
  "CMakeFiles/heuristics_tour.dir/heuristics_tour.cpp.o.d"
  "heuristics_tour"
  "heuristics_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heuristics_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
