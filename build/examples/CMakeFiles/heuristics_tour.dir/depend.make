# Empty dependencies file for heuristics_tour.
# This may be replaced when dependencies are built.
