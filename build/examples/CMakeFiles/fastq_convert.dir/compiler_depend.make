# Empty compiler generated dependencies file for fastq_convert.
# This may be replaced when dependencies are built.
