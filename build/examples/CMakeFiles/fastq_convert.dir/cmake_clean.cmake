file(REMOVE_RECURSE
  "CMakeFiles/fastq_convert.dir/fastq_convert.cpp.o"
  "CMakeFiles/fastq_convert.dir/fastq_convert.cpp.o.d"
  "fastq_convert"
  "fastq_convert.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fastq_convert.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
