# Empty dependencies file for reptile_correct.
# This may be replaced when dependencies are built.
