file(REMOVE_RECURSE
  "CMakeFiles/reptile_correct.dir/reptile_correct.cpp.o"
  "CMakeFiles/reptile_correct.dir/reptile_correct.cpp.o.d"
  "reptile_correct"
  "reptile_correct.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reptile_correct.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
