# Empty compiler generated dependencies file for ecoli_pipeline.
# This may be replaced when dependencies are built.
