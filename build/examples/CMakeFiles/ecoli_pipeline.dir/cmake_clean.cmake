file(REMOVE_RECURSE
  "CMakeFiles/ecoli_pipeline.dir/ecoli_pipeline.cpp.o"
  "CMakeFiles/ecoli_pipeline.dir/ecoli_pipeline.cpp.o.d"
  "ecoli_pipeline"
  "ecoli_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecoli_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
