# Empty compiler generated dependencies file for spectrum_reuse.
# This may be replaced when dependencies are built.
