file(REMOVE_RECURSE
  "CMakeFiles/spectrum_reuse.dir/spectrum_reuse.cpp.o"
  "CMakeFiles/spectrum_reuse.dir/spectrum_reuse.cpp.o.d"
  "spectrum_reuse"
  "spectrum_reuse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spectrum_reuse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
